"""Autoscaling ``max_concurrent`` from queue depth and attainment.

The scheduler's concurrency bound is a static config knob; under a
flash crowd a fixed bound either wastes slots (too high in the quiet
hours) or builds a deadline-missing queue (too low in the burst).  The
autoscaler closes that loop: each control tick it widens the bound by
one when the queue is backing up — or when any queued job's slack has
already gone negative, the attainment signal — and narrows it by one
when the queue is empty, never below the configured floor.

Scale-downs are *lazy*: the bound drops but running jobs are never
killed; freed slots simply stop back-filling until the count drifts
under the new bound.  Scale-ups take effect immediately
(:meth:`~repro.runtime.scheduler.JobScheduler.set_max_concurrent`
admits on the spot).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:
    from repro.runtime.scheduler import JobScheduler


class ConcurrencyAutoscaler:
    """One-step-per-tick hysteresis controller for the concurrency bound."""

    def __init__(
        self,
        scheduler: "JobScheduler",
        ceiling: int,
        floor: int = 0,
        scale_up_depth: int = 2,
    ) -> None:
        floor = floor if floor > 0 else scheduler.max_concurrent
        if ceiling < floor:
            raise ValueError(
                f"autoscale ceiling {ceiling} below floor {floor}"
            )
        self.scheduler = scheduler
        self.floor = floor
        self.ceiling = ceiling
        #: Queued jobs per free-slot deficit before a scale-up (the
        #: depth trigger; urgency triggers regardless of depth).
        self.scale_up_depth = scale_up_depth
        self.scale_ups = 0
        self.scale_downs = 0
        #: Highest bound ever set — `ServiceSummary.concurrency_high_water`
        #: reads the max of this and the achieved peak.
        self.high_water = scheduler.max_concurrent
        #: Observability hook: ``("up" | "down", new_bound)`` on every
        #: adjustment.  Observation-only.
        self.on_scale: Optional[Callable[[str, int], None]] = None

    def tick(self, now: float, urgent_queued: bool) -> None:
        """One control-loop step: at most one bound adjustment."""
        scheduler = self.scheduler
        depth = len(scheduler.queued)
        saturated = len(scheduler.running) >= scheduler.max_concurrent
        pressure = depth >= self.scale_up_depth or (
            urgent_queued and depth > 0
        )
        if saturated and pressure and scheduler.max_concurrent < self.ceiling:
            scheduler.set_max_concurrent(scheduler.max_concurrent + 1)
            self.scale_ups += 1
            self.high_water = max(self.high_water, scheduler.max_concurrent)
            if self.on_scale is not None:
                self.on_scale("up", scheduler.max_concurrent)
        elif depth == 0 and scheduler.max_concurrent > self.floor:
            # Lazy drain: no admission happens on a lowered bound, so
            # plain assignment (not set_max_concurrent) is deliberate.
            scheduler.max_concurrent -= 1
            self.scale_downs += 1
            if self.on_scale is not None:
                self.on_scale("down", scheduler.max_concurrent)
