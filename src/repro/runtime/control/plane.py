"""The control plane: one periodic loop driving preempt/throttle/scale.

:class:`ControlPlane` is the piece that closes the loop the scheduler
opened.  The data plane (executor + network) runs jobs; the scheduling
plane (admission policies) orders the queue; the control plane watches
*running* state each ``control_interval_s`` tick and intervenes:

1. **autoscale** — widen/narrow the scheduler's ``max_concurrent``
   from queue depth and attainment pressure
   (:class:`~repro.runtime.control.autoscaler.ConcurrencyAutoscaler`);
2. **preempt** — ask the registered
   :class:`~repro.runtime.control.preemption.PreemptionPolicy` for a
   (victim, beneficiary) swap and execute it through
   :meth:`~repro.runtime.scheduler.JobScheduler.preempt`;
3. **govern** — shift WAN share from slack-rich to slack-poor jobs via
   :class:`~repro.runtime.control.governor.BandwidthGovernor` caps;
4. **tune** — let the registered
   :class:`~repro.tuner.switcher.PolicySwitcher` score the live policy
   bundle against the observed regime and hot-swap scheduler /
   preemption policies (``tuner != "none"`` only).

All of them consume one shared
:class:`~repro.runtime.control.slack.SlackEstimator`, so "urgent"
means the same thing to the autoscaler, the preemptor, and the
governor.  The plane is only constructed when the config enables at
least one feature — a default config (``preemption="none"``, governor,
autoscaler and tuner off) never builds one, leaving every existing run
byte-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.pipeline.registry import placement_policy, preemption_policy
from repro.runtime.scheduling.slo import slo_weight
from repro.runtime.control.autoscaler import ConcurrencyAutoscaler
from repro.runtime.control.governor import BandwidthGovernor
from repro.runtime.control.preemption import (
    ControlView,
    NoPreemption,
    PreemptionDecision,
    PreemptionPolicy,
)
from repro.runtime.control.slack import SlackEstimator
from repro.sim.kernel import Process

if TYPE_CHECKING:
    from repro.pipeline.config import ServiceConfig
    from repro.runtime.scheduler import JobScheduler, JobTicket


class ControlPlane:
    """Periodic preemption + governing + autoscaling over one scheduler."""

    def __init__(
        self,
        scheduler: "JobScheduler",
        config: "ServiceConfig",
        predicted_bw: Callable[[], object],
        on_preempt: Optional[Callable[[PreemptionDecision], None]] = None,
        warehouse: Optional[Callable[[], object]] = None,
    ) -> None:
        self.scheduler = scheduler
        self.config = config
        self.predicted_bw = predicted_bw
        self.policy: PreemptionPolicy = preemption_policy(config.preemption)
        self.estimator = SlackEstimator(
            predicted_bw,  # type: ignore[arg-type]
            shuffle_overhead=scheduler.shuffle_overhead,
            achieved_rate_mbps=self._achieved_rate,
        )
        self.governor: Optional[BandwidthGovernor] = (
            BandwidthGovernor(
                scheduler.cluster.network,
                rich_slack_s=config.governor_slack_s,
                throttle_factor=config.governor_throttle_factor,
                # Under continuous recalibration the governor's caps
                # are clamped to the recalibrated per-pair capacity —
                # ``predicted_bw`` returns the service's live decision
                # matrix, which the recalibrator republishes each
                # tick.  Without recalibration the hint stays unset
                # and cap arithmetic is untouched.
                capacity_mbps=(
                    self._published_capacity
                    if getattr(config, "recalibrate", False)
                    else None
                ),
            )
            if config.governor
            else None
        )
        self.autoscaler: Optional[ConcurrencyAutoscaler] = (
            ConcurrencyAutoscaler(scheduler, ceiling=config.autoscale_max)
            if config.autoscale
            else None
        )
        self.switcher = None
        if config.tuner != "none":
            # Deferred import: the tuner package imports the registry,
            # which bootstraps this module for preemption policies.
            from repro.tuner.switcher import PolicySwitcher

            self.switcher = PolicySwitcher(
                scheduler, self, config, warehouse=warehouse
            )
        self.on_preempt = on_preempt
        #: (completion count, median rate) memo for :meth:`_achieved_rate`.
        self._rate_cache: Optional[tuple[int, Optional[float]]] = None
        #: Executed preemption decisions, in order.
        self.decisions: list[PreemptionDecision] = []
        self.preemptions = 0
        self.migrations = 0
        # Completion hook: release the finished job's throttles.  The
        # previous hook (if any) is chained, not replaced.
        self._chained_on_finished = scheduler.on_job_finished
        scheduler.on_job_finished = self._job_finished
        self._process = Process(
            scheduler.sim,
            config.control_interval_s,
            self._tick,
            start_delay=config.control_interval_s,
            priority=6,
        )

    def _published_capacity(self, src: str, dst: str) -> Optional[float]:
        """The live decision matrix's capacity for one pair (Mbps).

        ``None`` when no matrix is published yet or the pair is
        unknown — the governor then caps on rate alone, as before.
        """
        matrix = self.predicted_bw()
        getter = getattr(matrix, "get", None)
        if matrix is None or getter is None:
            return None
        try:
            return float(getter(src, dst))
        except KeyError:
            return None

    def _achieved_rate(self) -> Optional[float]:
        """Median per-job WAN throughput over completed runs (Mbps).

        The slack estimator's calibration feed — completed jobs are
        the ground truth for how fast this workload actually moves
        data on this network (parallel pairs, contention and all).
        Memoized on the completion count: a tick evaluates slack for
        every queued and running ticket, and re-sorting the completed
        list per evaluation would make ticks O(tickets × N log N) on
        the hundreds-of-queued-jobs scale the scheduler targets.
        """
        completed = self.scheduler.completed
        if self._rate_cache is not None and self._rate_cache[0] == len(
            completed
        ):
            return self._rate_cache[1]
        rates = sorted(
            t.result.wan_gb * 8.0 * 1024.0 / t.result.network_s
            for t in completed
            if t.result is not None and t.result.network_s > 0
        )
        value = rates[len(rates) // 2] if rates else None
        self._rate_cache = (len(completed), value)
        return value

    # -- observable state ------------------------------------------------

    @property
    def throttle_moves(self) -> int:
        """Caps the governor has applied (0 with the governor off)."""
        return self.governor.throttle_moves if self.governor else 0

    @property
    def throttle_releases(self) -> int:
        """Caps the governor has released (0 with the governor off)."""
        return self.governor.throttle_releases if self.governor else 0

    @property
    def policy_switches(self) -> int:
        """Bandit-driven policy swaps applied (0 with the tuner off)."""
        return self.switcher.switches if self.switcher is not None else 0

    @property
    def concurrency_high_water(self) -> int:
        """Highest concurrency bound (autoscaled) or achieved peak."""
        bound = (
            self.autoscaler.high_water
            if self.autoscaler is not None
            else self.scheduler.max_concurrent
        )
        return max(bound, self.scheduler.peak_concurrency)

    def view(self) -> ControlView:
        """The state snapshot preemption policies consume."""
        now = self.scheduler.sim.now
        default = self.scheduler.default_policy
        default_name = (
            default
            if isinstance(default, str)
            else getattr(placement_policy(default), "name", "")
        )
        return ControlView(
            now=now,
            running=tuple(self.scheduler.running),
            queued=tuple(self.scheduler.queued),
            slack_s=lambda t: self.estimator.slack_s(t, now),
            remaining_s=lambda t: self.estimator.predicted_remaining_s(
                t, now
            ),
            phase_cost_s=lambda t: (
                t.run.phase_elapsed_s if t.run is not None else 0.0
            ),
            default_policy_name=default_name,
            calibrated=self._achieved_rate() is not None,
        )

    # -- the loop --------------------------------------------------------

    def _tick(self, now: float) -> None:
        view = self.view()
        if self.autoscaler is not None:
            urgent = any(
                (slack := view.slack_s(t)) is not None and slack < 0.0
                for t in view.queued
            )
            self.autoscaler.tick(now, urgent_queued=urgent)
            view = self.view()  # admissions may have changed the sets
        if not isinstance(self.policy, NoPreemption):
            decision = self.policy.select(view)
            if decision is not None:
                self._execute(decision)
                view = self.view()
        if self.governor is not None:
            self.governor.rebalance(
                now, view.running, view.slack_s, weight_of=slo_weight
            )
        if self.switcher is not None:
            # Last: the switcher scores the world the actuators above
            # just made, then (outside its cooldown) may swap policies
            # that only take effect from the next admission on.
            self.switcher.tick(now)

    def _execute(self, decision: PreemptionDecision) -> None:
        if self.governor is not None:
            # The victim's transfers die with the pause; its caps too.
            self.governor.release_job(decision.victim.job.name)
        self.scheduler.preempt(
            decision.victim,
            decision.beneficiary,
            migrate=decision.migrate,
        )
        self.preemptions += 1
        if decision.migrate:
            self.migrations += 1
        self.decisions.append(decision)
        if self.on_preempt is not None:
            self.on_preempt(decision)

    def _job_finished(self, ticket: "JobTicket") -> None:
        if self.governor is not None:
            self.governor.release_job(ticket.job.name)
        if self._chained_on_finished is not None:
            self._chained_on_finished(ticket)

    # -- lifecycle hooks -------------------------------------------------

    def on_replan(self) -> None:
        """A re-plan tore the deployment (and the TC table) down."""
        if self.governor is not None:
            self.governor.forget()

    def close(self) -> None:
        """Stop the loop, restore switched policies, release throttles.

        The switcher restores the baseline policy bundle *before* the
        governor releases its caps, mirroring construction order in
        reverse — teardown leaves neither a switched-in policy nor a
        held throttle behind.
        """
        self._process.stop()
        if self.switcher is not None:
            self.switcher.close()
        if self.governor is not None:
            self.governor.release_all()
