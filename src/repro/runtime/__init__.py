"""Runtime service layer: multi-job WANify with online replanning.

The paper positions WANify as a *runtime* system — bandwidth is gauged
continuously and connection plans are rebalanced while analytics jobs
execute.  This package turns the one-shot reproduction pipeline
(train → predict → plan → run a single query) into a long-running
service on the deterministic :mod:`repro.sim` kernel:

* :mod:`repro.runtime.telemetry` — :class:`TelemetryStore`, a bounded
  time-series store fed by every DC's
  :class:`~repro.net.monitor.WanMonitor`, with sliding-window
  percentile capacity estimators (p50/p95) and EWMA smoothing;
* :mod:`repro.runtime.drift` — :class:`DriftDetector`, which watches
  estimator output against the trained prediction and fires
  re-gauge/re-plan events when the error exceeds a threshold;
* :mod:`repro.runtime.scheduler` — :class:`JobScheduler`, an admission
  queue running multiple concurrent GDA jobs over the shared WAN
  substrate, with per-job completion, SLO-attainment, and fairness
  statistics;
* :mod:`repro.runtime.scheduling` — the pluggable scheduling layer:
  registered admission policies (``fifo`` / ``priority`` /
  ``deadline-edf`` / ``fair-share``), per-job :class:`SLO` promises,
  and the :class:`BatchedReallocator` that amortizes queue
  re-ordering over submission batches;
* :mod:`repro.runtime.control` — the control plane: registered
  preemption policies (``none`` / ``urgent-slo`` / ``cost-aware``)
  pausing/resuming jobs via executor checkpoints, the deadline-aware
  :class:`BandwidthGovernor` shifting WAN share between running jobs,
  and the :class:`ConcurrencyAutoscaler` driving ``max_concurrent``;
* :mod:`repro.runtime.executor` — the event-driven (non-blocking) job
  runner the scheduler uses to interleave jobs on one simulator, with
  pause/resume checkpointing for preemption;
* :mod:`repro.runtime.observability` — the telemetry warehouse
  (:class:`MetricsLog` + time-grain rollups), the ring-buffered
  :class:`EventTrace`, operator :class:`KpiReport` tables over
  recorded runs, and a Prometheus-text ``/metrics`` surface, wired
  through every component by the :class:`ObservabilityHub`;
* :mod:`repro.runtime.scenarios` — named bandwidth-dynamics scenarios
  (diurnal swing, flash crowd, link degradation/failure, step drop,
  circuit failover/flapping and path-policy switching over the
  :mod:`repro.net.circuits` primitives) pluggable into
  :class:`~repro.net.simulator.NetworkSimulator`;
* :mod:`repro.runtime.recalibrator` — :class:`CapacityRecalibrator`,
  the background gauger that re-derives per-link usable capacity from
  the p95 of observed throughput on an interval (ceiling/floor
  guards, max step per tick), keeping plans honest between drift
  re-plans;
* :mod:`repro.runtime.service` — :class:`WANifyService`, which wires
  the pieces together and owns the replanning loop.

Quick tour::

    from repro.runtime import ServiceConfig, WANifyService, scenario

    service = WANifyService.build(
        ServiceConfig(scenario="link-degradation", seed=11)
    )
    service.submit(my_job)           # queued, admitted when a slot frees
    service.run(until=3600.0)        # drive the shared simulator
    print(service.summary())         # JCTs, waits, replans, fairness

``python -m repro serve`` exposes the same loop from the command line.
"""

from repro.runtime.control import (
    BandwidthGovernor,
    ConcurrencyAutoscaler,
    ControlPlane,
    ControlView,
    PreemptionDecision,
    PreemptionPolicy,
    SlackEstimator,
)
from repro.runtime.drift import DriftDetector, ReplanEvent
from repro.runtime.executor import JobCheckpoint, JobRun
from repro.runtime.observability import (
    EventTrace,
    KpiReport,
    MetricsLog,
    ObservabilityHub,
    RollupRow,
    TraceEvent,
)
from repro.runtime.recalibrator import CapacityRecalibrator
from repro.runtime.scenarios import (
    SCENARIOS,
    CircuitFailover,
    ComposedScenario,
    DiurnalSwing,
    FlappingLink,
    FlashCrowd,
    LinkDegradation,
    PathPolicySwitch,
    ScenarioModel,
    StepDrop,
    register_scenario_model,
    scenario,
    scenario_names,
)
from repro.runtime.scheduler import JobScheduler, JobTicket, jain_index
from repro.runtime.scheduling import (
    SLO,
    AdmissionPolicy,
    BatchedReallocator,
    SchedulerView,
    spread_slos,
)
from repro.runtime.service import (
    PipelineService,
    ServiceConfig,
    ServiceSummary,
    WANifyService,
    default_job_mix,
)
from repro.runtime.telemetry import LinkEstimate, LinkSeries, TelemetryStore

__all__ = [
    "AdmissionPolicy",
    "BandwidthGovernor",
    "BatchedReallocator",
    "CapacityRecalibrator",
    "CircuitFailover",
    "ComposedScenario",
    "ConcurrencyAutoscaler",
    "ControlPlane",
    "ControlView",
    "DiurnalSwing",
    "DriftDetector",
    "FlappingLink",
    "PathPolicySwitch",
    "EventTrace",
    "FlashCrowd",
    "KpiReport",
    "MetricsLog",
    "ObservabilityHub",
    "RollupRow",
    "TraceEvent",
    "JobCheckpoint",
    "JobRun",
    "PreemptionDecision",
    "PreemptionPolicy",
    "SlackEstimator",
    "JobScheduler",
    "JobTicket",
    "LinkDegradation",
    "SLO",
    "SchedulerView",
    "LinkEstimate",
    "LinkSeries",
    "PipelineService",
    "ReplanEvent",
    "SCENARIOS",
    "ScenarioModel",
    "ServiceConfig",
    "ServiceSummary",
    "StepDrop",
    "TelemetryStore",
    "WANifyService",
    "default_job_mix",
    "jain_index",
    "register_scenario_model",
    "scenario",
    "scenario_names",
    "spread_slos",
]
