"""Event-driven job execution for the multi-job runtime.

:class:`~repro.gda.engine.engine.GdaEngine` drives one job by pumping
the simulator loop itself (``sim.step()`` until each transfer batch
drains) — correct for a single query, but it cannot interleave jobs:
the first job's blocking drain would run every other job's events too.

:class:`JobRun` re-expresses the same execution model (DESIGN.md stage
semantics, shuffle overhead, placement validation) as a callback-driven
state machine: transfer batches advance the job from their completion
callbacks and compute phases are scheduled events, so any number of
runs interleave on one shared :class:`~repro.sim.kernel.Simulator` —
which is what lets the scheduler run concurrent jobs against the same
contended WAN.

Two runtime-specific twists:

* ``decision_bw`` may be a *callable* re-read at every placement
  decision — when the service re-plans mid-job, later stages of
  already-running jobs see the fresh matrix;
* per-job WAN volume is tracked from the run's own transfers (the
  network's global counters span all concurrent jobs).
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.gda.engine.cost import job_cost
from repro.gda.engine.dag import JobSpec, StageSpec
from repro.gda.engine.engine import (
    MIN_TRANSFER_MB,
    SHUFFLE_OVERHEAD,
    JobResult,
    StageMetrics,
    validate_placement,
)
from repro.gda.engine.cluster import GeoCluster
from repro.gda.systems.base import PlacementPolicy
from repro.net.matrix import BandwidthMatrix

#: ``decision_bw`` forms a run accepts: a fixed matrix, a provider
#: re-read per stage, or nothing (policies fall back to static logic).
DecisionBw = Union[
    BandwidthMatrix, Callable[[], Optional[BandwidthMatrix]], None
]


class JobRun:
    """One job advancing through its stages via simulator callbacks."""

    def __init__(
        self,
        cluster: GeoCluster,
        job: JobSpec,
        policy: PlacementPolicy,
        decision_bw: DecisionBw = None,
        shuffle_overhead: float = SHUFFLE_OVERHEAD,
        on_finish: Optional[Callable[[JobResult], None]] = None,
    ) -> None:
        if shuffle_overhead < 1.0:
            raise ValueError(
                f"shuffle overhead must be ≥ 1: {shuffle_overhead}"
            )
        self.cluster = cluster
        self.job = job
        self.policy = policy
        self._decision_bw = decision_bw
        self.shuffle_overhead = shuffle_overhead
        self.on_finish = on_finish
        self.result: Optional[JobResult] = None
        self.started = False
        self.wan_mbits = 0.0
        self._t0 = 0.0
        self._data: dict[str, float] = {}
        self._stages: list[StageMetrics] = []
        self._migration_s = 0.0
        self._migration_mb = 0.0

    @property
    def done(self) -> bool:
        """Whether the job has produced its result."""
        return self.result is not None

    @property
    def wan_mb(self) -> float:
        """WAN volume (MB) this run's transfers have carried so far.

        Live during execution — the fair-share admission policy reads
        it to count in-flight service, not just completed jobs.
        """
        return self.wan_mbits / 8.0

    def decision_bw(self) -> Optional[BandwidthMatrix]:
        """The policy's current belief about the network."""
        if callable(self._decision_bw):
            return self._decision_bw()
        return self._decision_bw

    # -- state machine --------------------------------------------------

    def start(self) -> "JobRun":
        """Begin executing; returns immediately, completion is async."""
        if self.started:
            raise RuntimeError(f"job {self.job.name!r} already started")
        self.started = True
        sim = self.cluster.network.sim
        self._t0 = sim.now
        self._data = {
            dc: float(mb)
            for dc, mb in self.job.input_mb_by_dc.items()
            if mb > 0
        }
        for dc in self._data:
            self.cluster.topology.index(dc)
        migration = self.policy.plan_migration(
            self._data,
            self.decision_bw(),
            self.cluster,
            shuffle_mb=self.job.intermediate_mb(),
        )
        transfers = []
        for src, dst, mb in migration:
            if mb <= MIN_TRANSFER_MB or src == dst:
                continue
            transfers.append((src, dst, mb))
            self._data[src] = self._data.get(src, 0.0) - mb
            self._data[dst] = self._data.get(dst, 0.0) + mb
            self._migration_mb += mb
        migration_start = sim.now

        def migrated() -> None:
            """Record migration time, then enter the first stage."""
            self._migration_s = sim.now - migration_start
            self._begin_stage(0)

        self._launch(transfers, "migration", migrated)
        return self

    def _begin_stage(self, index: int) -> None:
        if index >= len(self.job.stages):
            self._finish()
            return
        stage = self.job.stages[index]
        metrics = StageMetrics(stage.name)
        sim = self.cluster.network.sim
        if stage.shuffle:
            placement = self.policy.place_stage(
                stage, self._data, self.decision_bw(), self.cluster
            )
            validate_placement(placement, self.cluster.keys)
            transfers = []
            arriving = {dc: 0.0 for dc in self.cluster.keys}
            for src, mb in self._data.items():
                for dst, frac in placement.items():
                    volume = mb * frac
                    if volume <= MIN_TRANSFER_MB:
                        continue
                    arriving[dst] += volume
                    if src != dst:
                        transfers.append(
                            (src, dst, volume * self.shuffle_overhead)
                        )
            metrics.moved_mb = sum(
                mb for _, _, mb in transfers
            ) / self.shuffle_overhead
            metrics.placement = dict(placement)
            start = sim.now

            def shuffled() -> None:
                metrics.network_s = sim.now - start
                self._compute(index, stage, metrics, arriving)

            self._launch(transfers, stage.name, shuffled)
        else:
            arriving = dict(self._data)
            total = sum(arriving.values())
            metrics.placement = {
                dc: (mb / total if total > 0 else 0.0)
                for dc, mb in arriving.items()
            }
            self._compute(index, stage, metrics, arriving)

    def _compute(
        self,
        index: int,
        stage: StageSpec,
        metrics: StageMetrics,
        arriving: dict[str, float],
    ) -> None:
        sim = self.cluster.network.sim
        compute_s = max(
            (
                self.cluster.compute_seconds(dc, mb, stage.cpu_s_per_mb)
                for dc, mb in arriving.items()
                if mb > 0
            ),
            default=0.0,
        )
        metrics.compute_s = compute_s

        def computed() -> None:
            """Close this stage's books and advance to the next."""
            self._stages.append(metrics)
            self._data = {
                dc: mb * stage.output_ratio
                for dc, mb in arriving.items()
                if mb * stage.output_ratio > 0
            }
            self._begin_stage(index + 1)

        sim.schedule(compute_s, computed)

    def _launch(
        self,
        transfers: list[tuple[str, str, float]],
        tag: str,
        then: Callable[[], None],
    ) -> None:
        """Start a batch of transfers; call ``then`` when all finish."""
        network = self.cluster.network
        if not transfers:
            # Keep the advance asynchronous even for empty batches so
            # stage ordering is uniform (and recursion stays bounded).
            network.sim.schedule(0.0, then)
            return
        pending = [len(transfers)]

        def done(transfer) -> None:
            """Tally one finished transfer; fire ``then`` on the last."""
            self.wan_mbits += transfer.size_mbits
            pending[0] -= 1
            if pending[0] == 0:
                then()

        for src, dst, mb in transfers:
            network.start_transfer(
                src,
                dst,
                mb * 8.0,
                on_complete=done,
                tag=f"{self.job.name}:{tag}",
            )

    def _finish(self) -> None:
        network = self.cluster.network
        jct_s = network.sim.now - self._t0
        self.result = JobResult(
            job_name=self.job.name,
            system_name=self.policy.name,
            jct_s=jct_s,
            cost=job_cost(
                self.cluster, jct_s, self.wan_mbits,
                self.job.total_input_mb,
            ),
            # Cluster-wide floor since service start: with concurrent
            # jobs there is no per-job exclusive window to average over.
            min_bw_mbps=network.min_observed_bw(),
            wan_gb=self.wan_mbits / 8.0 / 1024.0,
            stages=self._stages,
            migration_s=self._migration_s,
            migration_mb=self._migration_mb,
        )
        if self.on_finish is not None:
            self.on_finish(self.result)
