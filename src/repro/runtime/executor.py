"""Event-driven job execution for the multi-job runtime.

:class:`~repro.gda.engine.engine.GdaEngine` drives one job by pumping
the simulator loop itself (``sim.step()`` until each transfer batch
drains) — correct for a single query, but it cannot interleave jobs:
the first job's blocking drain would run every other job's events too.

:class:`JobRun` re-expresses the same execution model (DESIGN.md stage
semantics, shuffle overhead, placement validation) as a callback-driven
state machine: transfer batches advance the job from their completion
callbacks and compute phases are scheduled events, so any number of
runs interleave on one shared :class:`~repro.sim.kernel.Simulator` —
which is what lets the scheduler run concurrent jobs against the same
contended WAN.

Three runtime-specific twists:

* ``decision_bw`` may be a *callable* re-read at every placement
  decision — when the service re-plans mid-job, later stages of
  already-running jobs see the fresh matrix;
* per-job WAN volume is tracked from the run's own transfers (the
  network's global counters span all concurrent jobs);
* a run can be **paused**: :meth:`JobRun.pause` cancels the in-flight
  phase and returns a :class:`JobCheckpoint` of the completed-stage
  state, from which a *new* run resumes later (``resume_from=``) —
  the control plane's preemption primitive.  Work inside the
  interrupted phase is lost and redone on resume; that lost progress
  is exactly the preemption cost the ``cost-aware`` policy weighs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.gda.engine.cost import job_cost
from repro.gda.engine.dag import JobSpec, StageSpec
from repro.gda.engine.engine import (
    MIN_TRANSFER_MB,
    SHUFFLE_OVERHEAD,
    JobResult,
    StageMetrics,
    validate_placement,
)
from repro.gda.engine.cluster import GeoCluster
from repro.gda.systems.base import PlacementPolicy
from repro.net.matrix import BandwidthMatrix

#: ``decision_bw`` forms a run accepts: a fixed matrix, a provider
#: re-read per stage, or nothing (policies fall back to static logic).
DecisionBw = Union[
    BandwidthMatrix, Callable[[], Optional[BandwidthMatrix]], None
]


def wan_mb_ahead(
    stages: list[StageSpec], total_mb: float, shuffle_overhead: float
) -> float:
    """Projected WAN volume (MB) of pushing ``total_mb`` through ``stages``.

    Each shuffle stage moves the then-current data volume (overhead
    included) and every stage shrinks it by its ``output_ratio``.
    Placement locality is ignored — this is the planning heuristic
    behind :meth:`JobRun.remaining_wan_mb` and the control plane's
    slack estimates, not an exact forecast.  The single definition
    keeps those estimators consistent.
    """
    volume = 0.0
    for stage in stages:
        if stage.shuffle:
            volume += total_mb * shuffle_overhead
        total_mb *= stage.output_ratio
    return volume


@dataclass(frozen=True)
class JobCheckpoint:
    """Completed-stage state of a paused run, enough to resume from.

    Captures the phase *boundary* the run last crossed: the interrupted
    phase's entry data distribution, the metrics of every fully
    completed stage, and the WAN/migration accounting accumulated so
    far.  Progress inside the interrupted phase (cancelled transfers,
    the unfinished compute timer) is deliberately absent — it is redone
    on resume, which is the preemption cost.
    """

    #: Index of the stage the run was in when paused (the resume point).
    stage_index: int
    #: Whether the input-migration phase had completed; when ``False``
    #: the resumed run re-plans migration from ``data`` — under the
    #: *current* decision matrix, so a resume after a re-plan migrates
    #: to the fresh view of the network.
    migrated: bool
    #: Data distribution (MB per DC) at the interrupted phase's entry.
    data: dict[str, float]
    #: Metrics of stages completed before the pause.
    stages: tuple[StageMetrics, ...]
    #: WAN megabits carried by *completed* transfers before the pause.
    wan_mbits: float
    migration_s: float
    migration_mb: float


class JobRun:
    """One job advancing through its stages via simulator callbacks."""

    def __init__(
        self,
        cluster: GeoCluster,
        job: JobSpec,
        policy: PlacementPolicy,
        decision_bw: DecisionBw = None,
        shuffle_overhead: float = SHUFFLE_OVERHEAD,
        on_finish: Optional[Callable[[JobResult], None]] = None,
        resume_from: Optional[JobCheckpoint] = None,
    ) -> None:
        if shuffle_overhead < 1.0:
            raise ValueError(
                f"shuffle overhead must be ≥ 1: {shuffle_overhead}"
            )
        self.cluster = cluster
        self.job = job
        self.policy = policy
        self._decision_bw = decision_bw
        self.shuffle_overhead = shuffle_overhead
        self.on_finish = on_finish
        self.result: Optional[JobResult] = None
        self.started = False
        self.paused = False
        self.wan_mbits = 0.0
        #: WAN volume inherited from the checkpoint (0 for fresh runs).
        self._carried_wan_mbits = (
            resume_from.wan_mbits if resume_from is not None else 0.0
        )
        self._resume = resume_from
        self._t0 = 0.0
        self._data: dict[str, float] = {}
        self._stages: list[StageMetrics] = []
        self._migration_s = 0.0
        self._migration_mb = 0.0
        self._migrated = False
        self._stage_index = 0
        #: Data distribution at the current phase's entry — what a
        #: checkpoint records, since mid-phase progress is not resumable.
        self._entry_data: dict[str, float] = {}
        #: Transfers currently in flight (cancelled wholesale on pause).
        self._inflight: list = []
        #: The pending advance event (compute timer / empty-batch hop).
        self._pending_event = None
        self._phase_started_s = 0.0

    @property
    def done(self) -> bool:
        """Whether the job has produced its result."""
        return self.result is not None

    @property
    def stage_index(self) -> int:
        """Index of the stage currently executing."""
        return self._stage_index

    @property
    def elapsed_s(self) -> float:
        """Seconds since this run started (the resumed slice only)."""
        if not self.started:
            return 0.0
        return self.cluster.network.sim.now - self._t0

    @property
    def slice_wan_mbits(self) -> float:
        """WAN megabits moved by *this* run slice (checkpoint carryover
        excluded) — the numerator matching :attr:`elapsed_s`, so
        throughput estimates for resumed runs stay honest."""
        return self.wan_mbits - self._carried_wan_mbits

    @property
    def phase_elapsed_s(self) -> float:
        """Seconds spent inside the current phase — the work a pause
        right now would throw away."""
        if not self.started or self.done:
            return 0.0
        return self.cluster.network.sim.now - self._phase_started_s

    def remaining_wan_mb(self) -> float:
        """Crude WAN volume still ahead of this run (MB).

        :func:`wan_mb_ahead` over the remaining stages, seeded with
        the current phase-entry volume.
        """
        return wan_mb_ahead(
            self.job.stages[self._stage_index:],
            sum(self._entry_data.values()),
            self.shuffle_overhead,
        )

    @property
    def wan_mb(self) -> float:
        """WAN volume (MB) this run's transfers have carried so far.

        Live during execution — the fair-share admission policy reads
        it to count in-flight service, not just completed jobs.
        """
        return self.wan_mbits / 8.0

    def decision_bw(self) -> Optional[BandwidthMatrix]:
        """The policy's current belief about the network."""
        if callable(self._decision_bw):
            return self._decision_bw()
        return self._decision_bw

    # -- state machine --------------------------------------------------

    def start(self) -> "JobRun":
        """Begin executing; returns immediately, completion is async.

        With ``resume_from`` set, execution restarts from the
        checkpoint instead of the job's raw inputs: completed stages
        and WAN accounting carry over, and the interrupted phase runs
        again from its entry state (re-planned against the *current*
        decision matrix — a resume after a service re-plan effectively
        migrates the job to the fresh backend plan).
        """
        if self.started:
            raise RuntimeError(f"job {self.job.name!r} already started")
        self.started = True
        sim = self.cluster.network.sim
        self._t0 = sim.now
        self._phase_started_s = sim.now
        if self._resume is not None:
            self._data = dict(self._resume.data)
            for dc in self._data:
                self.cluster.topology.index(dc)
            self._entry_data = dict(self._data)
            self._stages = list(self._resume.stages)
            self.wan_mbits = self._resume.wan_mbits
            self._migration_s = self._resume.migration_s
            self._migration_mb = self._resume.migration_mb
            if self._resume.migrated:
                self._migrated = True
                self._begin_stage(self._resume.stage_index)
                return self
            # Interrupted during migration: fall through and re-plan
            # the move from the checkpointed distribution.
        else:
            self._data = {
                dc: float(mb)
                for dc, mb in self.job.input_mb_by_dc.items()
                if mb > 0
            }
            for dc in self._data:
                self.cluster.topology.index(dc)
        self._entry_data = dict(self._data)
        migration = self.policy.plan_migration(
            self._data,
            self.decision_bw(),
            self.cluster,
            shuffle_mb=self.job.intermediate_mb(),
        )
        transfers = []
        for src, dst, mb in migration:
            if mb <= MIN_TRANSFER_MB or src == dst:
                continue
            transfers.append((src, dst, mb))
            self._data[src] = self._data.get(src, 0.0) - mb
            self._data[dst] = self._data.get(dst, 0.0) + mb
            self._migration_mb += mb
        migration_start = sim.now

        def migrated() -> None:
            """Record migration time, then enter the first stage."""
            self._migration_s += sim.now - migration_start
            self._migrated = True
            self._begin_stage(0)

        self._launch(transfers, "migration", migrated)
        return self

    def pause(self) -> JobCheckpoint:
        """Stop executing and checkpoint the completed-stage state.

        Cancels every in-flight transfer and the pending compute event;
        ``on_finish`` never fires for a paused run.  The returned
        checkpoint feeds a fresh ``JobRun(..., resume_from=...)`` —
        this run itself is finished with.  Progress inside the
        interrupted phase is discarded (cancelled transfer bytes are
        not re-credited), which is the preemption cost.
        """
        if not self.started:
            raise RuntimeError(f"job {self.job.name!r} never started")
        if self.done:
            raise RuntimeError(f"job {self.job.name!r} already finished")
        if self.paused:
            raise RuntimeError(f"job {self.job.name!r} already paused")
        self.paused = True
        network = self.cluster.network
        for transfer in list(self._inflight):
            network.cancel_transfer(transfer)
        self._inflight.clear()
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        return JobCheckpoint(
            stage_index=self._stage_index,
            migrated=self._migrated,
            data=dict(self._entry_data),
            stages=tuple(self._stages),
            wan_mbits=self.wan_mbits,
            migration_s=self._migration_s,
            migration_mb=self._migration_mb,
        )

    def _begin_stage(self, index: int) -> None:
        if self.paused:
            return
        if index >= len(self.job.stages):
            self._finish()
            return
        self._stage_index = index
        self._entry_data = dict(self._data)
        self._phase_started_s = self.cluster.network.sim.now
        stage = self.job.stages[index]
        metrics = StageMetrics(stage.name)
        sim = self.cluster.network.sim
        if stage.shuffle:
            placement = self.policy.place_stage(
                stage, self._data, self.decision_bw(), self.cluster
            )
            validate_placement(placement, self.cluster.keys)
            transfers = []
            arriving = {dc: 0.0 for dc in self.cluster.keys}
            for src, mb in self._data.items():
                for dst, frac in placement.items():
                    volume = mb * frac
                    if volume <= MIN_TRANSFER_MB:
                        continue
                    arriving[dst] += volume
                    if src != dst:
                        transfers.append(
                            (src, dst, volume * self.shuffle_overhead)
                        )
            metrics.moved_mb = sum(
                mb for _, _, mb in transfers
            ) / self.shuffle_overhead
            metrics.placement = dict(placement)
            start = sim.now

            def shuffled() -> None:
                metrics.network_s = sim.now - start
                self._compute(index, stage, metrics, arriving)

            self._launch(transfers, stage.name, shuffled)
        else:
            arriving = dict(self._data)
            total = sum(arriving.values())
            metrics.placement = {
                dc: (mb / total if total > 0 else 0.0)
                for dc, mb in arriving.items()
            }
            self._compute(index, stage, metrics, arriving)

    def _compute(
        self,
        index: int,
        stage: StageSpec,
        metrics: StageMetrics,
        arriving: dict[str, float],
    ) -> None:
        sim = self.cluster.network.sim
        compute_s = max(
            (
                self.cluster.compute_seconds(dc, mb, stage.cpu_s_per_mb)
                for dc, mb in arriving.items()
                if mb > 0
            ),
            default=0.0,
        )
        metrics.compute_s = compute_s

        def computed() -> None:
            """Close this stage's books and advance to the next."""
            if self.paused:
                return
            self._pending_event = None
            self._stages.append(metrics)
            self._data = {
                dc: mb * stage.output_ratio
                for dc, mb in arriving.items()
                if mb * stage.output_ratio > 0
            }
            self._begin_stage(index + 1)

        self._pending_event = sim.schedule(compute_s, computed)

    def _launch(
        self,
        transfers: list[tuple[str, str, float]],
        tag: str,
        then: Callable[[], None],
    ) -> None:
        """Start a batch of transfers; call ``then`` when all finish."""
        network = self.cluster.network
        if not transfers:
            # Keep the advance asynchronous even for empty batches so
            # stage ordering is uniform (and recursion stays bounded).
            def hop() -> None:
                if self.paused:
                    return
                self._pending_event = None
                then()

            self._pending_event = network.sim.schedule(0.0, hop)
            return
        pending = [len(transfers)]

        def done(transfer) -> None:
            """Tally one finished transfer; fire ``then`` on the last."""
            if self.paused:
                return
            self.wan_mbits += transfer.size_mbits
            if transfer in self._inflight:
                self._inflight.remove(transfer)
            pending[0] -= 1
            if pending[0] == 0:
                then()

        for src, dst, mb in transfers:
            self._inflight.append(
                network.start_transfer(
                    src,
                    dst,
                    mb * 8.0,
                    on_complete=done,
                    tag=f"{self.job.name}:{tag}",
                )
            )

    def _finish(self) -> None:
        network = self.cluster.network
        jct_s = network.sim.now - self._t0
        self.result = JobResult(
            job_name=self.job.name,
            system_name=self.policy.name,
            jct_s=jct_s,
            cost=job_cost(
                self.cluster, jct_s, self.wan_mbits,
                self.job.total_input_mb,
            ),
            # Cluster-wide floor since service start: with concurrent
            # jobs there is no per-job exclusive window to average over.
            min_bw_mbps=network.min_observed_bw(),
            wan_gb=self.wan_mbits / 8.0 / 1024.0,
            stages=self._stages,
            migration_s=self._migration_s,
            migration_mb=self._migration_mb,
        )
        if self.on_finish is not None:
            self.on_finish(self.result)
