"""Batched admission re-planning over the scheduler's queue.

Asking the policy to re-order the whole queue on *every* admission is
quadratic in queue depth — with hundreds of queued jobs the scheduler
would spend its time sorting, not admitting.  The
:class:`BatchedReallocator` amortizes that: it caches one full
admission order and only asks the policy again when

* the cached order is exhausted (every entry admitted),
* ``batch`` new submissions have accumulated since the last ordering
  (fresh tickets are invisible until then — the deliberate staleness
  that buys the amortization), or
* the policy is *dynamic* (``fair-share``) and a job finished, which
  changes attained-service inputs the order depends on.

With ``batch=1`` every admission sees a freshly computed order —
exact policy semantics, quadratic cost; the default ``batch`` keeps a
200-deep queue at a handful of orderings end to end
(:attr:`reorders` vs :attr:`pops` makes the ratio observable).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Union

if TYPE_CHECKING:
    from repro.runtime.scheduler import JobTicket
    from repro.runtime.scheduling.policies import AdmissionPolicy, SchedulerView

#: ``pop`` accepts the view itself or a zero-arg factory — the factory
#: form lets the scheduler skip snapshotting its state on cache-hit
#: pops, where the policy is never consulted.
ViewSpec = Union["SchedulerView", Callable[[], "SchedulerView"]]

#: Default submission batch between re-orderings.
DEFAULT_BATCH = 16


class BatchedReallocator:
    """Caches the policy's admission order between batched re-plans."""

    def __init__(self, policy: "AdmissionPolicy", batch: int = DEFAULT_BATCH) -> None:
        if batch < 1:
            raise ValueError(f"batch must be ≥ 1: {batch}")
        self.policy = policy
        self.batch = batch
        self._order: deque["JobTicket"] = deque()
        self._pending = 0
        self._dirty = False
        #: Policy orderings computed (the amortized cost).
        self.reorders = 0
        #: Tickets handed to the scheduler (the work amortized over).
        self.pops = 0

    def note_submit(self) -> None:
        """Record one new submission; re-plan once ``batch`` accumulate."""
        self._pending += 1

    def note_finish(self) -> None:
        """Record a completion; dynamic policies re-plan on the next pop."""
        if self.policy.dynamic:
            self._dirty = True

    def invalidate(self) -> None:
        """Force a re-ordering on the next pop (policy swap, SLO edit)."""
        self._dirty = True

    def _replan(self, queued: Sequence["JobTicket"], view: ViewSpec) -> None:
        if callable(view):
            view = view()
        self._order = deque(self.policy.order(list(queued), view))
        self.reorders += 1
        self._pending = 0
        self._dirty = False

    def pop(
        self,
        queued: Sequence["JobTicket"],
        view: ViewSpec,
    ) -> Optional["JobTicket"]:
        """The next ticket to admit (``None`` on an empty queue).

        ``view`` may be a :class:`SchedulerView` or a zero-arg factory;
        a factory is only invoked when a re-ordering actually happens.
        """
        if not queued:
            return None
        if self._dirty or self._pending >= self.batch:
            self._replan(queued, view)
        while self._order:
            ticket = self._order.popleft()
            # Robustness: skip entries no longer queued (a caller may
            # have removed tickets behind our back).
            if ticket.state == "queued":
                self.pops += 1
                return ticket
        # Cache exhausted while tickets wait — they arrived after the
        # last ordering.  Re-plan over the live queue.
        self._replan(queued, view)
        self.pops += 1
        return self._order.popleft()
