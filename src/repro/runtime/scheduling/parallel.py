"""Process-parallel shard execution with deterministic merge.

The in-process :class:`~repro.runtime.scheduling.shards.ShardedScheduler`
splits the admission queue but still drains every shard on *one*
simulator in *one* process: at thousands of jobs the shared heap, the
shared transfer state, and the work-stealing scans (each steal re-runs
the donor's full admission order) dominate the wall clock, and a second
CPU core cannot help.  This module is the scale-out answer:

* :func:`partition_mix` splits a submission mix into per-shard slices
  using the *same* tenant hash as the in-process sharded scheduler
  (:func:`~repro.runtime.scheduling.shards.shard_for_tenant`), so a
  tenant lands on the same shard either way;
* :class:`ShardTask` packages one shard's world — regions, profile,
  scenario, seed, kernel, scheduler knobs, and its job slice — as a
  picklable value;
* :func:`run_shard` (a module-level function, so it pickles by
  reference) builds that world from scratch inside a worker process,
  drains it, and returns a :class:`ShardResult` of per-job
  :class:`JobRecord` summaries;
* :class:`ShardExecutor` fans the tasks out over a ``multiprocessing``
  pool (``workers`` processes) or runs them serially in-process
  (``workers`` ≤ 1) — the results are **byte-identical** either way,
  because each shard's simulation is seeded and self-contained and the
  merge consumes results in shard order, never arrival order;
* :func:`merge_stats` folds the per-shard records into the same
  statistics vocabulary as
  :func:`~repro.runtime.scheduler.aggregate_stats` (global makespan
  from the earliest submit to the latest finish, Jain fairness over
  the merged per-job throughputs), plus reconciliation counters.

Pool construction or pickling can fail on exotic platforms; the
executor then falls back to the serial path and records
:attr:`ShardExecutor.fell_back` rather than crashing the run.  The
service exposes all of this behind ``ServiceConfig.shard_workers``
(default 0 = the executor never runs; the in-process scheduler is
byte-identical to yesterday's service).

What partitioning gives up: shards no longer contend for one WAN (each
worker simulates its own copy of the network), and there is no
cross-shard work-stealing.  That is the price of linear scaling — and
on a multi-tenant mix with tenant-hashed routing it is exactly the
"scale by adding cells" deployment the paper's service model assumes.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.dag import JobSpec
from repro.gda.engine.engine import SHUFFLE_OVERHEAD
from repro.net.profiles import network_profile
from repro.runtime.scheduler import ZERO_STATS, JobScheduler, JobTicket
from repro.runtime.scheduling.shards import (
    shard_for_tenant,
    split_concurrency,
    tenant_of_submission,
)
from repro.runtime.scheduling.slo import SLO, deadline_met, jain_index, tenant_of

__all__ = [
    "JobRecord",
    "ShardExecutor",
    "ShardResult",
    "ShardTask",
    "merge_stats",
    "partition_mix",
    "run_shard",
]

#: One submission: ``(delay_s, job, policy-name-or-None, slo-or-None)``.
#: The policy travels as a *registered name* (or ``None`` for the
#: shard's default), never an instance — instances may close over
#: unpicklable state.
Entry = tuple[float, JobSpec, Optional[str], Optional[SLO]]


@dataclass(frozen=True)
class ShardTask:
    """Everything one worker needs to rebuild and drain a shard.

    Frozen and built from plain values (strings, numbers, the frozen
    :class:`~repro.runtime.scheduling.slo.SLO`, and
    :class:`~repro.gda.engine.dag.JobSpec` dataclasses) so it pickles
    across the process boundary.  Two tasks with equal fields produce
    byte-identical :class:`ShardResult`\\ s — the whole parallel path
    rests on that.
    """

    index: int
    regions: tuple[str, ...]
    vm: str
    profile: str
    scenario: Optional[str]
    seed: int
    kernel: str
    admission: str
    default_policy: str
    max_concurrent: int
    admit_batch: int
    shuffle_overhead: float = SHUFFLE_OVERHEAD
    default_slo: Optional[SLO] = None
    jobs: tuple[Entry, ...] = ()


@dataclass(frozen=True)
class JobRecord:
    """One finished job's numbers, detached from its ticket.

    Tickets hold live simulator state (runs, checkpoints, callbacks)
    and cannot cross the process boundary; records carry exactly what
    the merge needs.
    """

    name: str
    tenant: str
    shard: int
    submitted_s: float
    finished_s: float
    wait_s: float
    jct_s: float
    #: Achieved WAN throughput in Mbps (0.0 when the job moved no WAN
    #: bytes) — the fairness input.
    throughput_mbps: float
    #: Deadline verdict: ``True``/``False`` when the job carried one,
    #: ``None`` when it promised nothing.
    met: Optional[bool] = None


@dataclass
class ShardResult:
    """What one shard's drain produced."""

    index: int
    records: list[JobRecord] = field(default_factory=list)
    submitted: int = 0
    queued: int = 0
    running: int = 0
    peak_concurrency: int = 0
    #: Kernel events the shard's simulator executed.
    events_processed: int = 0
    #: Final simulation clock of the shard.
    sim_end_s: float = 0.0
    #: Wall-clock seconds the drain took inside the worker.
    wall_s: float = 0.0


def partition_mix(
    entries: list[Entry],
    shards: int,
    default_slo: Optional[SLO] = None,
) -> list[list[Entry]]:
    """Split a submission mix into per-shard slices by tenant hash.

    Routing matches the in-process
    :meth:`~repro.runtime.scheduling.shards.ShardedScheduler.shard_of`
    exactly (same tenant key, same CRC-32 hash), so a mix drained
    in-process and a mix drained through the executor agree on which
    shard owns which tenant.  Within a slice the original submission
    order — and therefore the per-shard event order — is preserved.
    """
    slices: list[list[Entry]] = [[] for _ in range(shards)]
    for entry in entries:
        _, job, _, slo = entry
        tenant = tenant_of_submission(job, slo, default_slo)
        slices[shard_for_tenant(tenant, shards)].append(entry)
    return slices


def _record(ticket: JobTicket, shard: int) -> JobRecord:
    """Flatten a finished ticket into a picklable record."""
    throughput = 0.0
    if ticket.result is not None and ticket.result.network_s > 0:
        throughput = ticket.result.wan_gb * 8.0 * 1024.0 / ticket.result.network_s
    return JobRecord(
        name=ticket.job.name,
        tenant=tenant_of(ticket),
        shard=shard,
        submitted_s=ticket.submitted_s,
        finished_s=float(ticket.finished_s or 0.0),
        wait_s=ticket.wait_s,
        jct_s=ticket.jct_s,
        throughput_mbps=throughput,
        met=deadline_met(ticket),
    )


def run_shard(task: ShardTask) -> ShardResult:
    """Build, submit, and drain one shard's world; return its records.

    Deterministic in the task alone: the profile's fluctuation and the
    scenario weather are seeded from ``task.seed``, the kernel's event
    order is total, and nothing reads process-global state — which is
    what makes running this in a pool worker equivalent to running it
    inline.
    """
    start = time.perf_counter()
    profile = network_profile(task.profile)
    base = profile.fluctuation(seed=task.seed)
    weather = base
    if task.scenario is not None:
        from repro.runtime.scenarios import scenario

        weather = scenario(task.scenario, seed=task.seed, base=base)
    cluster = GeoCluster.build(
        task.regions,
        task.vm,
        fluctuation=weather,
        profile=profile,
        kernel=task.kernel,
    )
    scheduler = JobScheduler(
        cluster,
        max_concurrent=task.max_concurrent,
        shuffle_overhead=task.shuffle_overhead,
        default_policy=task.default_policy,
        admission=task.admission,
        default_slo=task.default_slo,
        admit_batch=task.admit_batch,
    )
    scheduler.submit_many(list(task.jobs))
    sim = cluster.network.sim
    sim.run()
    return ShardResult(
        index=task.index,
        records=[_record(t, task.index) for t in scheduler.completed],
        submitted=len(task.jobs),
        queued=len(scheduler.queued),
        running=len(scheduler.running),
        peak_concurrency=scheduler.peak_concurrency,
        events_processed=sim.events_processed,
        sim_end_s=sim.now,
        wall_s=time.perf_counter() - start,
    )


def merge_stats(results: list[ShardResult]) -> dict[str, float]:
    """Fold per-shard results into one statistics row.

    Same vocabulary (and same zero values) as
    :func:`~repro.runtime.scheduler.aggregate_stats`: the makespan
    spans from the globally earliest submission to the globally latest
    finish, fairness is Jain's index over the merged per-job
    throughputs, and attainment counts only jobs that promised a
    deadline.  ``submitted`` / ``queued`` / ``running`` / ``shards``
    ride along so callers can reconcile
    (``submitted == completed + queued + running``).
    """
    records = [r for result in results for r in result.records]
    submitted = sum(result.submitted for result in results)
    queued = sum(result.queued for result in results)
    running = sum(result.running for result in results)
    if records:
        first_submit = min(r.submitted_s for r in records)
        makespan = max(r.finished_s for r in records) - first_submit
        attained = sum(1 for r in records if r.met is True)
        missed = sum(1 for r in records if r.met is False)
        with_deadline = attained + missed
        merged = {
            "completed": float(len(records)),
            "mean_wait_s": sum(r.wait_s for r in records) / len(records),
            "mean_jct_s": sum(r.jct_s for r in records) / len(records),
            "total_jct_s": sum(r.jct_s for r in records),
            "makespan_s": makespan,
            "jobs_per_hour": len(records) / (makespan / 3600.0) if makespan > 0 else 0.0,
            "fairness": jain_index([r.throughput_mbps for r in records]),
            "slo_attained": float(attained),
            "slo_missed": float(missed),
            "slo_attainment": attained / with_deadline if with_deadline > 0 else 1.0,
        }
    else:
        merged = dict(ZERO_STATS)
    merged["shards"] = float(len(results))
    merged["submitted"] = float(submitted)
    merged["queued"] = float(queued)
    merged["running"] = float(running)
    merged["events_processed"] = float(sum(result.events_processed for result in results))
    return merged


class ShardExecutor:
    """Run shard tasks in worker processes (or serially when asked).

    ``workers`` ≤ 1 drains every task inline — the deterministic
    reference the parallel path must match byte for byte.  ``workers``
    ≥ 2 maps the tasks over a ``multiprocessing`` pool; results come
    back via ``Pool.map``, which preserves task order, so the merge
    never depends on worker arrival timing.  Any pool failure
    (platform without ``fork``/``spawn``, pickling refusal) degrades
    to the serial path and sets :attr:`fell_back` — scale-out is an
    optimization, never a correctness requirement.
    """

    def __init__(self, workers: int = 0) -> None:
        if workers < 0:
            raise ValueError(f"workers must be ≥ 0: {workers}")
        self.workers = workers
        #: Worker processes actually used by the last :meth:`run`
        #: (0 = the serial in-process path).
        self.workers_used = 0
        #: ``True`` when the last run requested a pool but degraded to
        #: the serial path.
        self.fell_back = False
        #: Wall-clock seconds the last :meth:`run` took end to end.
        self.wall_s = 0.0

    @staticmethod
    def _context() -> multiprocessing.context.BaseContext:
        """The preferred multiprocessing context.

        ``fork`` when the platform has it (workers inherit the loaded
        interpreter — no re-import cost per shard), else ``spawn``.
        Shard results do not depend on the start method: ``run_shard``
        reads nothing process-global, and no hash-salted ordering
        leaks into the simulation (tenant routing is CRC-32).
        """
        try:
            return multiprocessing.get_context("fork")
        except ValueError:
            return multiprocessing.get_context("spawn")

    def run(self, tasks: list[ShardTask]) -> list[ShardResult]:
        """Drain every task; results are returned in task order."""
        start = time.perf_counter()
        self.fell_back = False
        self.workers_used = 0
        try:
            if self.workers >= 2 and len(tasks) >= 2:
                results = self._run_pool(tasks)
            else:
                results = [run_shard(task) for task in tasks]
        finally:
            self.wall_s = time.perf_counter() - start
        return results

    def _run_pool(self, tasks: list[ShardTask]) -> list[ShardResult]:
        """The pool path, degrading to serial on any pool failure."""
        workers = min(self.workers, len(tasks))
        try:
            context = self._context()
            with context.Pool(processes=workers) as pool:
                results = pool.map(run_shard, tasks)
            self.workers_used = workers
            return results
        except Exception:
            self.fell_back = True
            self.workers_used = 0
            return [run_shard(task) for task in tasks]


def build_tasks(
    entries: list[Entry],
    shards: int,
    *,
    regions: tuple[str, ...],
    vm: str,
    profile: str,
    scenario: Optional[str],
    seed: int,
    kernel: str,
    admission: str,
    default_policy: str,
    max_concurrent: int,
    admit_batch: int,
    shuffle_overhead: float = SHUFFLE_OVERHEAD,
    default_slo: Optional[SLO] = None,
) -> list[ShardTask]:
    """Partition a mix and package each slice as a :class:`ShardTask`.

    The concurrency budget splits across shards exactly like the
    in-process sharded scheduler
    (:func:`~repro.runtime.scheduling.shards.split_concurrency` — every
    shard gets at least one slot).
    """
    if shards < 1:
        raise ValueError(f"shard count must be ≥ 1: {shards}")
    slices = partition_mix(entries, shards, default_slo)
    bounds = split_concurrency(max_concurrent, shards)
    return [
        ShardTask(
            index=index,
            regions=tuple(regions),
            vm=vm,
            profile=profile,
            scenario=scenario,
            seed=seed,
            kernel=kernel,
            admission=admission,
            default_policy=default_policy,
            max_concurrent=bounds[index],
            admit_batch=admit_batch,
            shuffle_overhead=shuffle_overhead,
            default_slo=default_slo,
            jobs=tuple(slices[index]),
        )
        for index in range(shards)
    ]
