"""Pluggable scheduling: admission policies, SLOs, batched re-planning.

The :class:`~repro.runtime.scheduler.JobScheduler` used to hardwire a
FIFO queue; this package lifts the *policy* out of it, using the same
registry pattern as the pipeline stages:

* :mod:`~repro.runtime.scheduling.slo` — the :class:`SLO` dataclass
  (deadline / priority / weight / tenant), attainment accounting, and
  :func:`jain_index`;
* :mod:`~repro.runtime.scheduling.policies` — the
  :class:`AdmissionPolicy` protocol and the built-in ``fifo`` /
  ``priority`` / ``deadline-edf`` / ``fair-share`` policies, registered
  in :data:`~repro.pipeline.registry.admission_policy_registry` via
  ``@register_admission_policy``;
* :mod:`~repro.runtime.scheduling.reallocator` — the
  :class:`BatchedReallocator`, which amortizes queue re-ordering over
  submission batches so the scheduler holds hundreds of queued jobs
  without quadratic re-plan churn.

Policies are selectable everywhere the layered config reaches —
``scheduler = "deadline-edf"`` in a TOML file, ``WANIFY_SCHEDULER``,
``--scheduler`` on ``serve``, and the sweep matrix's ``schedulers``
axis::

    from repro.runtime import SLO, ServiceConfig, PipelineService

    service = PipelineService.build(
        ServiceConfig(scheduler="deadline-edf", slo_deadline_s=900.0)
    )
    service.submit(job, slo=SLO(deadline_s=300.0, priority=2))
"""

from repro.runtime.scheduling.policies import (
    AdmissionPolicy,
    DeadlineAdmission,
    FairShareAdmission,
    FifoAdmission,
    PriorityAdmission,
    SchedulerView,
)
from repro.runtime.scheduling.reallocator import DEFAULT_BATCH, BatchedReallocator
from repro.runtime.scheduling.slo import (
    SLO,
    attainment,
    deadline_met,
    jain_index,
    slo_weight,
    spread_slos,
    tenant_of,
)

__all__ = [
    "SLO",
    "AdmissionPolicy",
    "BatchedReallocator",
    "DEFAULT_BATCH",
    "DeadlineAdmission",
    "FairShareAdmission",
    "FifoAdmission",
    "PriorityAdmission",
    "SchedulerView",
    "ShardExecutor",
    "ShardedScheduler",
    "attainment",
    "deadline_met",
    "jain_index",
    "slo_weight",
    "spread_slos",
    "tenant_of",
]


def __getattr__(name: str):
    """Lazy re-export of the sharded scheduler and shard executor.

    :mod:`~repro.runtime.scheduling.shards` (and
    :mod:`~repro.runtime.scheduling.parallel`) import
    :mod:`repro.runtime.scheduler`, which imports this package — an
    eager import here would be circular, so the symbols resolve on
    first attribute access instead.
    """
    if name == "ShardedScheduler":
        from repro.runtime.scheduling.shards import ShardedScheduler

        return ShardedScheduler
    if name == "ShardExecutor":
        from repro.runtime.scheduling.parallel import ShardExecutor

        return ShardExecutor
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
