"""Registered admission policies: who gets the next executor slot.

The :class:`~repro.runtime.scheduler.JobScheduler` keeps submissions in
arrival order and asks an :class:`AdmissionPolicy` — resolved through
:data:`~repro.pipeline.registry.admission_policy_registry`, the same
registry pattern as the pipeline stages — how to *order* them whenever
a slot frees up.  A policy sees a read-only :class:`SchedulerView` of
the scheduler's state, so implementations can weigh waiting time,
deadlines, or achieved per-tenant service without reaching into the
scheduler itself.

Built-ins::

    @register_admission_policy("fifo")          # arrival order (default)
    @register_admission_policy("priority")      # SLO.priority, then FIFO
    @register_admission_policy("deadline-edf")  # earliest deadline first
    @register_admission_policy("fair-share")    # Jain-index-aware shares

Register your own the same way stages are registered — the name is
then selectable from config files, ``WANIFY_SCHEDULER``, ``--scheduler``
on the CLI, and the sweep matrix's ``schedulers`` axis::

    from repro.pipeline.registry import register_admission_policy

    @register_admission_policy("shortest-job-first")
    class ShortestJobFirst:
        name = "shortest-job-first"
        dynamic = False

        def order(self, queued, view):
            return sorted(queued, key=lambda t: t.job.total_input_mb)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.pipeline.registry import register_admission_policy
from repro.runtime.scheduling.slo import jain_index, slo_weight, tenant_of

if TYPE_CHECKING:
    from repro.runtime.scheduler import JobTicket


@dataclass(frozen=True)
class SchedulerView:
    """Read-only scheduler state handed to admission policies."""

    #: Current simulated time.
    now: float
    #: Tickets currently executing.
    running: Sequence["JobTicket"]
    #: Tickets that have finished, in completion order.
    completed: Sequence["JobTicket"]

    def tenant_service(self) -> dict[str, float]:
        """Weight-normalized WAN service (MB) attained per tenant.

        Completed tickets contribute their measured WAN volume; running
        tickets contribute what their transfers have carried *so far*
        (:attr:`~repro.runtime.executor.JobRun.wan_mb`), so a tenant
        with a large job in flight is already "ahead" while it runs.
        """
        service: dict[str, float] = {}
        for ticket in self.completed:
            if ticket.result is not None:
                served = ticket.result.wan_gb * 1024.0
            else:
                served = ticket.job.total_input_mb
            tenant = tenant_of(ticket)
            service[tenant] = service.get(tenant, 0.0) + served / slo_weight(ticket)
        for ticket in self.running:
            if ticket.run is not None:
                served = ticket.run.wan_mb
            else:
                served = ticket.job.total_input_mb
            tenant = tenant_of(ticket)
            service[tenant] = service.get(tenant, 0.0) + served / slo_weight(ticket)
        return service


@runtime_checkable
class AdmissionPolicy(Protocol):
    """Orders the admission queue (first = admitted next)."""

    #: Registry key, reported in scheduler stats and sweep rows.
    name: str
    #: ``True`` when the order depends on completions/running service —
    #: the :class:`~repro.runtime.scheduling.reallocator
    #: .BatchedReallocator` then re-plans after every job finish, not
    #: just when the submission batch fills.
    dynamic: bool

    def order(
        self,
        queued: Sequence["JobTicket"],
        view: SchedulerView,
    ) -> list["JobTicket"]:
        """The queued tickets in admission order."""
        ...


@register_admission_policy("fifo")
class FifoAdmission:
    """Arrival order — the legacy behavior and the default."""

    name = "fifo"
    dynamic = False

    def order(
        self,
        queued: Sequence["JobTicket"],
        view: SchedulerView,
    ) -> list["JobTicket"]:
        """Submission order (the queue already is)."""
        return list(queued)


@register_admission_policy("priority")
class PriorityAdmission:
    """Strict :attr:`~repro.runtime.scheduling.slo.SLO.priority` order.

    Higher priority admits first; ties fall back to arrival order, so
    an all-default-SLO run is indistinguishable from FIFO.
    """

    name = "priority"
    dynamic = False

    def order(
        self,
        queued: Sequence["JobTicket"],
        view: SchedulerView,
    ) -> list["JobTicket"]:
        """Descending priority, FIFO within a priority band."""
        return sorted(
            queued,
            key=lambda t: (
                -(t.slo.priority if t.slo is not None else 0),
                t.submitted_s,
                t.seq,
            ),
        )


@register_admission_policy("deadline-edf")
class DeadlineAdmission:
    """Earliest-deadline-first against each ticket's absolute deadline.

    Tickets without a deadline sort last (FIFO among themselves): a
    job that promised nothing should never displace one racing a
    deadline.

    Preemption-aware: a queued ticket that was preempted must pay a
    checkpoint-restart toll before it makes progress again, so its
    *effective* deadline is charged :data:`RESTART_COST_S` per
    preemption suffered — a twice-preempted job sorts as if its
    deadline were a minute closer, biasing admission against bouncing
    the same victim repeatedly.  Never-preempted tickets (every ticket
    in a run without a preemption policy) sort exactly as before.
    """

    name = "deadline-edf"
    dynamic = False

    #: Effective-deadline charge (s) per preemption a queued ticket has
    #: suffered — the restart toll of re-reading its checkpoint.
    RESTART_COST_S = 30.0

    def order(
        self,
        queued: Sequence["JobTicket"],
        view: SchedulerView,
    ) -> list["JobTicket"]:
        """Ascending effective deadline; deadline-free tickets last."""

        def key(ticket: "JobTicket") -> tuple[float, float, int]:
            deadline = (
                ticket.slo.deadline_at(ticket.submitted_s)
                if ticket.slo is not None
                else None
            )
            if deadline is None:
                deadline = float("inf")
            elif ticket.preemptions:
                deadline -= self.RESTART_COST_S * ticket.preemptions
            return (deadline, ticket.submitted_s, ticket.seq)

        return sorted(queued, key=key)


@register_admission_policy("fair-share")
class FairShareAdmission:
    """Weighted fair sharing of WAN service across tenants.

    Greedy Jain maximization: repeatedly admit, among each tenant's
    oldest queued ticket, the candidate whose admission maximizes
    :func:`~repro.runtime.scheduling.slo.jain_index` over projected
    weight-normalized per-tenant service.  Service already attained
    (completed + in-flight WAN volume, from
    :meth:`SchedulerView.tenant_service`) is the starting point, so a
    tenant that hogged the WAN early waits while the others catch up.
    """

    name = "fair-share"
    dynamic = True

    #: Floor (MB) for a tenant's service in the Jain projection.
    #: :func:`~repro.runtime.scheduling.slo.jain_index` drops
    #: non-positive entries, which would make a *completely starved*
    #: tenant invisible — admitting the hog again would then look
    #: perfectly fair.  The floor keeps every known tenant in the
    #: vector.
    SERVICE_FLOOR_MB = 1.0

    def order(
        self,
        queued: Sequence["JobTicket"],
        view: SchedulerView,
    ) -> list["JobTicket"]:
        """Greedy max-Jain admission order over tenant service."""
        service = view.tenant_service()
        tenants = set(service) | {tenant_of(t) for t in queued}

        def fairness(projected: dict[str, float]) -> float:
            return jain_index(
                [
                    max(projected.get(t, 0.0), self.SERVICE_FLOOR_MB)
                    for t in tenants
                ]
            )

        # FIFO within each tenant: only the oldest ticket per tenant is
        # ever a candidate.
        remaining: dict[str, list[JobTicket]] = {}
        for ticket in queued:
            remaining.setdefault(tenant_of(ticket), []).append(ticket)
        ordered: list[JobTicket] = []
        while remaining:
            best_tenant = None
            best_key: tuple[float, float, int] | None = None
            for tenant, tickets in remaining.items():
                head = tickets[0]
                projected = dict(service)
                projected[tenant] = projected.get(tenant, 0.0) + (
                    head.job.total_input_mb / slo_weight(head)
                )
                # Maximize fairness; break ties toward the older
                # submission so equal tenants stay FIFO.
                key = (
                    -fairness(projected),
                    head.submitted_s,
                    head.seq,
                )
                if best_key is None or key < best_key:
                    best_key = key
                    best_tenant = tenant
            tickets = remaining[best_tenant]
            head = tickets.pop(0)
            if not tickets:
                del remaining[best_tenant]
            service[best_tenant] = service.get(best_tenant, 0.0) + (
                head.job.total_input_mb / slo_weight(head)
            )
            ordered.append(head)
        return ordered
