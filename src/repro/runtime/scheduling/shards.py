"""Tenant-sharded scheduling with work-stealing between shards.

One :class:`~repro.runtime.scheduler.JobScheduler` serializes admission
for every tenant: each submission, preemption, and finish walks one
shared queue, and at thousands of queued jobs the policy re-ordering —
even batched — is the service bottleneck.  The
:class:`ShardedScheduler` splits that queue into N independent shards,
each a full ``JobScheduler`` running the same admission policy over its
own slice of the concurrency budget.  Submissions hash to a shard by
*tenant* (stable CRC-32 of the tenant name — Python's ``hash()`` is
salted per process and would break seeded reproducibility), so one
tenant's flood re-orders only its own shard's queue.

Static tenant hashing alone strands capacity: a shard whose tenants go
quiet idles while another's queue grows.  Work-stealing closes the gap
— whenever a shard has a free slot and an empty queue, it steals the
*next ticket the donor would have admitted* (the donor's own
admission-policy order decides, so deadline-EDF donors give up their
most urgent queued ticket, not an arbitrary one).  Both reallocators
are invalidated so neither shard admits from a stale cached order.

The class mirrors the single scheduler's control surface (``submit`` /
``preempt`` / ``set_max_concurrent`` / ``set_admission`` / ``stats`` /
lifecycle hooks), so the control plane, observability hub, and policy
switcher drive it unchanged.  ``ServiceConfig.scheduler_shards`` picks
the shard count; the default of 1 keeps the plain ``JobScheduler`` and
today's behavior byte-identical.
"""

from __future__ import annotations

import zlib
from itertools import chain
from typing import Callable, Optional

from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.dag import JobSpec
from repro.gda.engine.engine import SHUFFLE_OVERHEAD
from repro.runtime.executor import DecisionBw, JobCheckpoint
from repro.runtime.scheduler import (
    AdmissionSpec,
    JobScheduler,
    JobTicket,
    PolicySpec,
    aggregate_stats,
)
from repro.runtime.scheduling.policies import AdmissionPolicy
from repro.runtime.scheduling.reallocator import DEFAULT_BATCH
from repro.runtime.scheduling.slo import SLO

__all__ = [
    "ShardedScheduler",
    "shard_for_tenant",
    "split_concurrency",
    "tenant_of_submission",
]


def tenant_of_submission(
    job: JobSpec, slo: Optional[SLO], default_slo: Optional[SLO] = None
) -> str:
    """Tenant routing key for a not-yet-ticketed submission.

    Mirrors :func:`repro.runtime.scheduling.slo.tenant_of` before a
    ticket exists: the SLO's explicit tenant wins (the submission's
    own, else the scheduler default), otherwise the job name's leading
    ``-``-separated word.  Shared by the in-process sharded scheduler
    and the process-parallel shard executor so both route a submission
    to the same shard.
    """
    effective = slo if slo is not None else default_slo
    if effective is not None and effective.tenant:
        return effective.tenant
    return job.name.split("-", 1)[0]


def shard_for_tenant(tenant: str, shards: int) -> int:
    """Stable shard index for a tenant name.

    CRC-32 rather than ``hash()``: the builtin string hash is salted
    per process, and shard routing must be reproducible across runs
    for the seeded scenarios to replay identically.
    """
    if shards < 1:
        raise ValueError(f"shard count must be ≥ 1: {shards}")
    return zlib.crc32(tenant.encode("utf-8")) % shards


def split_concurrency(total: int, shards: int) -> list[int]:
    """Distribute a concurrency budget across shards, ≥ 1 each.

    The first ``total % shards`` shards take the remainder.  When
    ``total < shards`` every shard still gets one slot (a shard that
    cannot run anything cannot steal either), so the effective bound
    is ``max(total, shards)``.
    """
    if shards < 1:
        raise ValueError(f"shard count must be ≥ 1: {shards}")
    base, extra = divmod(max(total, 0), shards)
    return [max(1, base + (1 if i < extra else 0)) for i in range(shards)]


class ShardedScheduler:
    """N independent admission queues over one cluster, stealing on idle.

    Drop-in for :class:`~repro.runtime.scheduler.JobScheduler` from the
    control plane's point of view; construction arguments match so the
    service can swap one for the other off a config knob.
    """

    def __init__(
        self,
        cluster: GeoCluster,
        shards: int = 2,
        max_concurrent: int = 3,
        decision_bw: DecisionBw = None,
        shuffle_overhead: float = SHUFFLE_OVERHEAD,
        default_policy: PolicySpec = "tetrium",
        admission: AdmissionSpec = "fifo",
        default_slo: Optional[SLO] = None,
        admit_batch: int = DEFAULT_BATCH,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shard count must be ≥ 1: {shards}")
        self.cluster = cluster
        self.default_slo = default_slo
        self.shards: list[JobScheduler] = []
        for bound in split_concurrency(max_concurrent, shards):
            shard = JobScheduler(
                cluster,
                max_concurrent=bound,
                decision_bw=decision_bw,
                shuffle_overhead=shuffle_overhead,
                default_policy=default_policy,
                admission=admission,
                default_slo=default_slo,
                admit_batch=admit_batch,
            )
            shard.on_event = self._shard_event
            shard.on_job_finished = self._shard_finished
            self.shards.append(shard)
        self.shuffle_overhead = shuffle_overhead
        self._default_policy: PolicySpec = default_policy
        #: Queued tickets moved between shards by work-stealing.
        self.steal_count = 0
        #: Total submissions accepted (the reconciliation anchor:
        #: ``submitted == completed + queued + running`` always).
        self.submitted = 0
        #: Most jobs ever in flight at once, across all shards.
        self.peak_concurrency = 0
        #: Fires after a shard finishes a job (the control plane
        #: chains its own hook here).
        self.on_job_finished: Optional[Callable[[JobTicket], None]] = None
        #: Lifecycle hook: ``("submit" | "admit" | "finish" |
        #: "preempt" | "steal", ticket)``.  Observation-only.
        self.on_event: Optional[Callable[[str, JobTicket], None]] = None

    # -- shared-surface properties --------------------------------------

    @property
    def shard_count(self) -> int:
        """Number of shards (the ``scheduler_shards`` knob)."""
        return len(self.shards)

    @property
    def sim(self):
        """The shared simulator all shards run on."""
        return self.cluster.network.sim

    @property
    def max_concurrent(self) -> int:
        """Total concurrency bound (sum of the per-shard bounds)."""
        return sum(shard.max_concurrent for shard in self.shards)

    @property
    def default_policy(self) -> PolicySpec:
        """Placement policy applied to unpinned submissions."""
        return self._default_policy

    @default_policy.setter
    def default_policy(self, value: PolicySpec) -> None:
        """Propagate the new default policy to every shard."""
        self._default_policy = value
        for shard in self.shards:
            shard.default_policy = value

    @property
    def admission(self) -> AdmissionPolicy:
        """The admission policy instance (identical on every shard)."""
        return self.shards[0].admission

    @property
    def queued(self) -> list[JobTicket]:
        """All queued tickets, shard by shard."""
        return list(chain.from_iterable(s.queued for s in self.shards))

    @property
    def running(self) -> list[JobTicket]:
        """All running tickets, shard by shard."""
        return list(chain.from_iterable(s.running for s in self.shards))

    @property
    def completed(self) -> list[JobTicket]:
        """All completed tickets, shard by shard."""
        return list(chain.from_iterable(s.completed for s in self.shards))

    # -- submission ------------------------------------------------------

    def _tenant(self, job: JobSpec, slo: Optional[SLO]) -> str:
        """Tenant routing key (mirrors ``slo.tenant_of`` pre-ticket)."""
        return tenant_of_submission(job, slo, self.default_slo)

    def shard_of(self, job: JobSpec, slo: Optional[SLO] = None) -> int:
        """The shard index a submission routes to."""
        return shard_for_tenant(self._tenant(job, slo), len(self.shards))

    def submit(
        self,
        job: JobSpec,
        policy: PolicySpec = None,
        slo: Optional[SLO] = None,
    ) -> JobTicket:
        """Queue a job on its tenant's shard; idle shards may steal it."""
        shard = self.shards[self.shard_of(job, slo)]
        self.submitted += 1
        ticket = shard.submit(job, policy, slo)
        self._balance()
        return ticket

    def submit_at(
        self,
        delay_s: float,
        job: JobSpec,
        policy: PolicySpec = None,
        slo: Optional[SLO] = None,
    ) -> None:
        """Schedule a submission ``delay_s`` seconds from now."""
        self.sim.schedule(delay_s, lambda: self.submit(job, policy, slo))

    def _submit_thunk(
        self, job: JobSpec, policy: PolicySpec, slo: Optional[SLO]
    ) -> Callable[[], None]:
        """A zero-argument deferred submit (bulk-scheduling payload)."""
        return lambda: self.submit(job, policy, slo)

    def submit_many(
        self,
        entries: list[tuple[float, JobSpec, PolicySpec, Optional[SLO]]],
    ) -> None:
        """Bulk-schedule submissions (one heapify; see
        :meth:`JobScheduler.submit_many
        <repro.runtime.scheduler.JobScheduler.submit_many>`).  Routing
        to a tenant's shard still happens per entry at fire time."""
        self.sim.schedule_many(
            (delay_s, self._submit_thunk(job, policy, slo))
            for delay_s, job, policy, slo in entries
        )

    # -- work-stealing ---------------------------------------------------

    def _owner_of(self, ticket: JobTicket) -> Optional[JobScheduler]:
        """The shard currently holding ``ticket`` (queued or running)."""
        for shard in self.shards:
            if any(t is ticket for t in shard.running) or any(t is ticket for t in shard.queued):
                return shard
        return None

    def _steal(self, thief: JobScheduler) -> bool:
        """Move one queued ticket from the longest queue to ``thief``."""
        donor = None
        for candidate in self.shards:
            if candidate is thief or not candidate.queued:
                continue
            if donor is None or len(candidate.queued) > len(donor.queued):
                donor = candidate
        if donor is None:
            return False
        # The donor's own admission order picks the ticket: the thief
        # runs what the donor would have admitted next, so stealing
        # never inverts the donor's policy order either.
        ordered = donor.admission.order(list(donor.queued), donor.view())
        ticket = ordered[0]
        donor.queued.remove(ticket)
        donor.reallocator.invalidate()
        thief.queued.append(ticket)
        thief.reallocator.invalidate()
        self.steal_count += 1
        if self.on_event is not None:
            self.on_event("steal", ticket)
        thief._admit()
        return True

    def _balance(self) -> None:
        """Let idle shards (free slot, empty queue) steal queued work."""
        for thief in self.shards:
            while len(thief.running) < thief.max_concurrent and not thief.queued:
                if not self._steal(thief):
                    # No shard has queued work; nothing left to move.
                    return

    # -- control-plane surface -------------------------------------------

    def preempt(
        self,
        victim: JobTicket,
        beneficiary: Optional[JobTicket] = None,
        migrate: bool = False,
    ) -> JobCheckpoint:
        """Preempt ``victim`` on its shard, optionally for ``beneficiary``.

        A beneficiary queued on a *different* shard is first stolen
        onto the victim's shard (the slot being vacated lives there).
        """
        owner = None
        for shard in self.shards:
            if any(t is victim for t in shard.running):
                owner = shard
                break
        if owner is None:
            raise ValueError(f"ticket {victim.job.name!r} is not running")
        if beneficiary is not None and beneficiary not in owner.queued:
            source = self._owner_of(beneficiary)
            if source is None or beneficiary not in source.queued:
                raise ValueError(f"ticket {beneficiary.job.name!r} is not queued")
            source.queued.remove(beneficiary)
            source.reallocator.invalidate()
            owner.queued.append(beneficiary)
            owner.reallocator.invalidate()
            self.steal_count += 1
            if self.on_event is not None:
                self.on_event("steal", beneficiary)
        checkpoint = owner.preempt(victim, beneficiary, migrate)
        self._balance()
        return checkpoint

    def set_max_concurrent(self, value: int) -> None:
        """Re-split the concurrency budget across shards."""
        if value < 1:
            raise ValueError(f"max_concurrent must be ≥ 1: {value}")
        for shard, bound in zip(self.shards, split_concurrency(value, len(self.shards))):
            shard.set_max_concurrent(bound)
        self._balance()

    def set_admission(self, spec: object) -> None:
        """Hot-swap the admission policy on every shard."""
        for shard in self.shards:
            shard.set_admission(spec)

    # -- hooks -----------------------------------------------------------

    def _shard_event(self, kind: str, ticket: JobTicket) -> None:
        """Forward a shard's lifecycle event, tracking global peak."""
        if kind == "admit":
            in_flight = sum(len(s.running) for s in self.shards)
            if in_flight > self.peak_concurrency:
                self.peak_concurrency = in_flight
        if self.on_event is not None:
            self.on_event(kind, ticket)

    def _shard_finished(self, ticket: JobTicket) -> None:
        """Re-balance after a finish, then run the chained hook."""
        self._balance()
        if self.on_job_finished is not None:
            self.on_job_finished(ticket)

    # -- statistics ------------------------------------------------------

    def stats(self) -> dict[str, float]:
        """Merged completion statistics plus shard counters.

        The completed populations of every shard aggregate through the
        same :func:`~repro.runtime.scheduler.aggregate_stats` as the
        single scheduler, so sharded and single-shard runs report
        comparable numbers; ``shards`` / ``steals`` / ``submitted`` /
        ``queued`` / ``running`` ride along for reconciliation.
        """
        first_submits = [s._first_submit for s in self.shards if s._first_submit is not None]
        merged = aggregate_stats(self.completed, min(first_submits) if first_submits else None)
        merged["shards"] = float(len(self.shards))
        merged["steals"] = float(self.steal_count)
        merged["submitted"] = float(self.submitted)
        merged["queued"] = float(sum(len(s.queued) for s in self.shards))
        merged["running"] = float(sum(len(s.running) for s in self.shards))
        return merged
