"""Per-job service-level objectives and fairness accounting.

An :class:`SLO` rides on a :class:`~repro.runtime.scheduler.JobTicket`
from submission to completion.  It is deliberately small — a relative
deadline, an admission priority, a fair-share weight, and a tenant
label — because that is exactly the vocabulary the registered admission
policies speak: ``priority`` orders by :attr:`SLO.priority`,
``deadline-edf`` by the absolute deadline, and ``fair-share`` by
weighted per-tenant service.

:func:`jain_index` lives here (re-exported by
:mod:`repro.runtime.scheduler` for compatibility) so the fair-share
policy and the scheduler's aggregate statistics share one fairness
definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:
    from repro.runtime.scheduler import JobTicket


def jain_index(values: list[float]) -> float:
    """Jain's fairness index: 1 = perfectly even, → 1/n = one hog.

    >>> round(jain_index([10.0, 10.0, 10.0]), 3)
    1.0
    """
    positives = [v for v in values if v > 0]
    if not positives:
        return 1.0
    total = sum(positives)
    squares = sum(v * v for v in positives)
    return total * total / (len(positives) * squares)


@dataclass(frozen=True)
class SLO:
    """What one job was promised: deadline, priority, fair share.

    All fields are optional in spirit — the zero-value SLO behaves
    exactly like no SLO at all (no deadline, neutral priority, unit
    weight, tenant inferred from the job name).
    """

    #: Completion deadline in seconds *from submission* (``None`` = no
    #: deadline; the job never counts toward SLO attainment).
    deadline_s: Optional[float] = None
    #: Admission priority for the ``priority`` policy (higher admits
    #: earlier).
    priority: int = 0
    #: Fair-share weight — a tenant with weight 2 is entitled to twice
    #: the service of a weight-1 tenant before the ``fair-share``
    #: policy deprioritizes it.
    weight: float = 1.0
    #: Fair-share accounting group.  ``None`` infers the group from the
    #: job name's leading word (``wordcount-3`` → ``wordcount``), which
    #: matches how the default job mix interleaves workload families.
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive: {self.deadline_s}")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive: {self.weight}")

    def deadline_at(self, submitted_s: float) -> Optional[float]:
        """Absolute deadline for a job submitted at ``submitted_s``."""
        if self.deadline_s is None:
            return None
        return submitted_s + self.deadline_s


def tenant_of(ticket: "JobTicket") -> str:
    """The fair-share accounting group a ticket belongs to.

    The SLO's explicit ``tenant`` wins; otherwise the job name's
    leading ``-``-separated word is the group.
    """
    if ticket.slo is not None and ticket.slo.tenant is not None:
        return ticket.slo.tenant
    return ticket.job.name.split("-", 1)[0]


def slo_weight(ticket: "JobTicket") -> float:
    """The ticket's fair-share weight (1.0 without an SLO)."""
    return ticket.slo.weight if ticket.slo is not None else 1.0


def deadline_met(ticket: "JobTicket") -> Optional[bool]:
    """Whether a finished ticket met its deadline.

    ``None`` when the ticket carries no deadline or has not finished —
    such tickets are excluded from attainment accounting entirely.
    """
    if ticket.slo is None or ticket.slo.deadline_s is None:
        return None
    if ticket.finished_s is None:
        return None
    deadline = ticket.slo.deadline_at(ticket.submitted_s)
    return ticket.finished_s <= deadline


def attainment(tickets: Iterable["JobTicket"]) -> tuple[int, int]:
    """``(attained, missed)`` deadline counts over finished tickets."""
    attained = missed = 0
    for ticket in tickets:
        met = deadline_met(ticket)
        if met is None:
            continue
        if met:
            attained += 1
        else:
            missed += 1
    return attained, missed


def spread_slos(
    mix: list[tuple[float, object]],
    deadline_s: float,
    seed: int = 42,
) -> list[tuple[float, object, SLO]]:
    """Seeded heterogeneous SLOs over a ``(delay, job)`` mix.

    A uniform deadline makes earliest-deadline-first collapse into
    FIFO (same order, same attainment); real mixes promise different
    jobs different latitude.  This helper spreads deadlines over
    ``[0.4, 1.8] × deadline_s`` and cycles priorities 2/1/0, so the
    admission policies have something to disagree about —
    deterministic in ``(mix, deadline_s, seed)``.
    """
    import numpy as np

    if deadline_s <= 0:
        raise ValueError(f"deadline_s must be positive: {deadline_s}")
    rng = np.random.default_rng(seed)
    out: list[tuple[float, object, SLO]] = []
    for index, (delay, job) in enumerate(mix):
        factor = float(rng.uniform(0.4, 1.8))
        slo = SLO(
            deadline_s=deadline_s * factor,
            priority=(2 - index % 3),
        )
        out.append((delay, job, slo))
    return out
