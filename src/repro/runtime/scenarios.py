"""Named bandwidth-dynamics scenarios.

Each scenario wraps a base weather model (usually
:class:`~repro.net.dynamics.FluctuationModel`) and multiplies in a
deterministic *shape* — a structural capacity change the offline
training campaign never saw.  That is exactly the regime the runtime
service exists for: the prediction model stays calibrated to normal
weather, the scenario drifts the real network away from it, and the
:class:`~repro.runtime.drift.DriftDetector` has something to catch.

Scenario models satisfy the same duck-typed interface as the weather
models (``factor`` and ``snapshot_jitter``), so they plug straight into
:class:`~repro.net.simulator.NetworkSimulator` and the measurement
probes.  Everything is a pure function of ``(seed, i, j, t)`` — replays
and independent simulator instances agree on the shape.

Scenarios register by name in the shared
:data:`~repro.pipeline.registry.scenario_registry`
(``@register_scenario`` / :func:`register_scenario_model`), and
``+``-joined names compose: ``scenario("diurnal+flash-crowd")`` stacks
a flash crowd on the diurnal swing.  Built-in names:

====================  ================================================
name                  shape
====================  ================================================
``calm``              base weather only (control)
``diurnal``           deep daily swing on every link
``flash-crowd``       a transient capacity crunch on ~half the links
``link-degradation``  a subset of links ramp down to ~25 % and stay
``link-failure``      a few links collapse to ~5 % (effective failure)
``step-drop``         the whole substrate steps down to ~55 %
``circuit-failover``  hit links fail → degraded window → secondary
``circuit-flap``      chronically flapping links (square wave)
``path-policy``       switch to the secondary when the primary dips
====================  ================================================

The ``circuit-*`` and ``path-policy`` scenarios are built on the
multi-path circuit primitives in :mod:`repro.net.circuits` — see that
module for the failover/flap/path-policy semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.net.circuits import CircuitPair, flap_quality, select_path
from repro.net.dynamics import (
    DAY_S,
    FluctuationModel,
    StaticModel,
    _link_hash,
)
from repro.pipeline.registry import register_scenario, scenario_registry

#: Hard floor for the combined capacity factor — links never reach
#: exactly zero (the fluid solver needs positive caps).
FACTOR_FLOOR = 0.02

#: Salt for scenario link selection, kept away from the weather model's
#: own hash inputs.
_SELECT_SALT = 0x5C3A


def _selected(seed: int, i: int, j: int, fraction: float) -> bool:
    """Deterministically pick ``fraction`` of directed links."""
    if fraction >= 1.0:
        return True
    if fraction <= 0.0:
        return False
    rng = _link_hash(seed ^ _SELECT_SALT, i, j, -3)
    return bool(rng.uniform() < fraction)


def _ramp(t: float, start: float, ramp_s: float) -> float:
    """0 before ``start``, 1 after ``start + ramp_s``, linear between."""
    if t <= start:
        return 0.0
    if ramp_s <= 0.0 or t >= start + ramp_s:
        return 1.0
    return (t - start) / ramp_s


@dataclass(frozen=True)
class ScenarioModel:
    """Base class: base weather × scenario shape, floored.

    Subclasses override :meth:`shape`; ``factor`` is what the simulator
    consumes.  ``snapshot_jitter`` delegates to the base model so probe
    noise is unchanged.
    """

    base: FluctuationModel | StaticModel = field(
        default_factory=FluctuationModel
    )
    seed: int = 7

    #: Registry key; subclasses set their own.
    name: str = "scenario"

    def shape(self, i: int, j: int, t: float) -> float:
        """Multiplicative scenario factor (1 = no effect)."""
        return 1.0

    def factor(self, i: int, j: int, t: float) -> float:
        """Combined capacity factor for link ``i → j`` at time ``t``."""
        if i == j:
            return 1.0
        combined = self.base.factor(i, j, t) * self.shape(i, j, t)
        return float(max(combined, FACTOR_FLOOR))

    def snapshot_jitter(
        self, i: int, j: int, t: float, window_s: float
    ) -> float:
        """Probe jitter, inherited from the base weather."""
        return self.base.snapshot_jitter(i, j, t, window_s)


@dataclass(frozen=True)
class DiurnalSwing(ScenarioModel):
    """A pronounced daily cycle on every link.

    Much deeper than the base model's own diurnal term — models a
    shared-backbone region where business-hours cross-traffic halves
    usable capacity.  Per-link phases are spread a little so the trough
    is not perfectly synchronized.
    """

    name: str = "diurnal"
    amplitude: float = 0.35
    period_s: float = DAY_S
    phase_spread: float = 0.6

    def shape(self, i: int, j: int, t: float) -> float:
        """Phase-spread sinusoid dipping to ``1 − amplitude``."""
        rng = _link_hash(self.seed ^ _SELECT_SALT, i, j, -4)
        phase = float(rng.uniform(-self.phase_spread, self.phase_spread))
        return 1.0 - self.amplitude * (
            0.5 + 0.5 * np.sin(2.0 * np.pi * t / self.period_s + phase)
        )


@dataclass(frozen=True)
class FlashCrowd(ScenarioModel):
    """A transient crunch: affected links ramp down, hold, recover.

    Models a correlated external event (a big live stream, a viral
    release) stealing WAN capacity for ``duration_s``.
    """

    name: str = "flash-crowd"
    start_s: float = 600.0
    duration_s: float = 900.0
    ramp_s: float = 120.0
    depth: float = 0.4
    hit_fraction: float = 0.5

    def shape(self, i: int, j: int, t: float) -> float:
        """Ramp down to ``depth``, hold, ramp back (selected links)."""
        if not _selected(self.seed, i, j, self.hit_fraction):
            return 1.0
        onset = _ramp(t, self.start_s, self.ramp_s)
        recovery = _ramp(t, self.start_s + self.duration_s, self.ramp_s)
        intensity = onset - recovery
        return 1.0 - (1.0 - self.depth) * max(0.0, intensity)


@dataclass(frozen=True)
class LinkDegradation(ScenarioModel):
    """Selected links ramp down to ``residual`` capacity and stay there.

    Models route damage — a submarine-cable fault, a bad peering
    change.  ``links`` pins explicit (i, j) index pairs; when empty,
    ``hit_fraction`` of links is hash-selected.  With a small
    ``residual`` this doubles as the link-*failure* scenario.
    """

    name: str = "link-degradation"
    start_s: float = 600.0
    ramp_s: float = 300.0
    residual: float = 0.25
    hit_fraction: float = 0.25
    links: tuple[tuple[int, int], ...] = ()

    def _hit(self, i: int, j: int) -> bool:
        if self.links:
            return (i, j) in self.links
        return _selected(self.seed, i, j, self.hit_fraction)

    def shape(self, i: int, j: int, t: float) -> float:
        """Ramp hit links down to ``residual`` and hold there."""
        if not self._hit(i, j):
            return 1.0
        progress = _ramp(t, self.start_s, self.ramp_s)
        return 1.0 - (1.0 - self.residual) * progress


@dataclass(frozen=True)
class StepDrop(ScenarioModel):
    """The whole substrate steps down to ``level`` at ``at_s``.

    Models a provider-wide brownout (maintenance window, backbone
    reroute) — instantaneous, global, persistent.
    """

    name: str = "step-drop"
    at_s: float = 900.0
    level: float = 0.55

    def shape(self, i: int, j: int, t: float) -> float:
        """``level`` everywhere once ``at_s`` passes."""
        return self.level if t >= self.at_s else 1.0


@dataclass(frozen=True)
class CircuitFailover(ScenarioModel):
    """Hit links lose their primary circuit and fail over.

    Each selected link rides a :class:`~repro.net.circuits.CircuitPair`:
    full quality until ``fail_at_s``, a degraded-quality transition
    window while the failover converges, then the secondary circuit's
    steady (thinner) quality for the rest of the run.  Per-link phase
    jitter spreads the failure instants a little so a population of
    links does not fail on one simulator event.
    """

    name: str = "circuit-failover"
    circuit: CircuitPair = CircuitPair()
    fail_at_s: float = 600.0
    #: Per-link failure-time spread (uniform in ±spread_s).
    spread_s: float = 60.0
    hit_fraction: float = 0.3

    def _fail_at(self, i: int, j: int) -> float:
        if self.spread_s <= 0.0:
            return self.fail_at_s
        rng = _link_hash(self.seed ^ _SELECT_SALT, i, j, -5)
        return self.fail_at_s + float(
            rng.uniform(-self.spread_s, self.spread_s)
        )

    def shape(self, i: int, j: int, t: float) -> float:
        """The circuit pair's delivered quality for hit links."""
        if not _selected(self.seed, i, j, self.hit_fraction):
            return 1.0
        quality, _ = self.circuit.quality_at(t - self._fail_at(i, j))
        return quality


@dataclass(frozen=True)
class FlappingLink(ScenarioModel):
    """Chronically unstable links: a square wave of up/down quality.

    From ``start_s`` on, each selected link flaps with period
    ``period_s``, spending ``duty`` of every period down at
    ``down_quality``.  Per-link hash-derived phases desynchronize the
    population — at any instant roughly ``duty`` of the hit links are
    down, which is the chronic-instability regime (no steady level for
    a planner to converge to).
    """

    name: str = "circuit-flap"
    start_s: float = 300.0
    period_s: float = 180.0
    duty: float = 0.5
    down_quality: float = 0.1
    hit_fraction: float = 0.3

    def shape(self, i: int, j: int, t: float) -> float:
        """Square-wave quality on hit links once flapping starts."""
        if t < self.start_s:
            return 1.0
        if not _selected(self.seed, i, j, self.hit_fraction):
            return 1.0
        rng = _link_hash(self.seed ^ _SELECT_SALT, i, j, -6)
        phase = float(rng.uniform(0.0, self.period_s))
        return flap_quality(
            t - self.start_s,
            self.period_s,
            self.duty,
            up_quality=1.0,
            down_quality=self.down_quality,
            phase_s=phase,
        )


@dataclass(frozen=True)
class PathPolicySwitch(ScenarioModel):
    """Minimum-capacity path policy over the base weather.

    Watches the *primary* path's weather factor; while it clears
    ``min_capacity_fraction`` traffic stays on the primary (shape 1).
    The moment it dips below, policy moves the link to a steady
    secondary circuit: the shape compensates the weather so the
    combined factor holds at ``secondary_quality`` — a stable, thinner
    path instead of a collapsing one.  (The policy reads base weather,
    not sibling scenario shapes, so in a ``+``-composition it reacts
    to the shared weather only.)
    """

    name: str = "path-policy"
    min_capacity_fraction: float = 0.5
    secondary_quality: float = 0.6

    def shape(self, i: int, j: int, t: float) -> float:
        """1 on the primary; weather-compensated on the secondary."""
        primary = self.base.factor(i, j, t)
        if select_path(primary, self.min_capacity_fraction) == "primary":
            return 1.0
        return self.secondary_quality / max(primary, FACTOR_FLOOR)


@dataclass(frozen=True)
class ComposedScenario(ScenarioModel):
    """Several scenario shapes stacked multiplicatively on one base.

    Built by :func:`scenario` for ``+``-joined names — e.g.
    ``"diurnal+flash-crowd"`` runs a flash crowd *on top of* the deep
    daily swing (a ROADMAP composition item).  Each part contributes
    its :meth:`~ScenarioModel.shape` only; the shared base weather is
    applied once by :meth:`~ScenarioModel.factor`.
    """

    name: str = "composed"
    parts: tuple[ScenarioModel, ...] = ()

    def shape(self, i: int, j: int, t: float) -> float:
        """Product of every part's shape."""
        combined = 1.0
        for part in self.parts:
            combined *= part.shape(i, j, t)
        return combined


def _base(base: FluctuationModel | StaticModel | None, seed: int):
    return base if base is not None else FluctuationModel(seed=seed)


def register_scenario_model(
    cls: type[ScenarioModel],
    name: str | None = None,
    **defaults: object,
) -> type[ScenarioModel]:
    """Register a :class:`ScenarioModel` subclass under its name.

    The registry stores ``(base, seed) → model`` factories;
    ``defaults`` become fixed constructor keywords — how one shape
    class backs several named scenarios (``link-degradation`` and
    ``link-failure`` below)::

        @dataclass(frozen=True)
        class MeteorStrike(ScenarioModel):
            name: str = "meteor-strike"
            ...

        register_scenario_model(MeteorStrike)
    """
    key = name if name is not None else cls.name
    register_scenario(key)(
        lambda base, seed: cls(_base(base, seed), seed, **defaults)
    )
    return cls


register_scenario_model(ScenarioModel, name="calm")
register_scenario_model(DiurnalSwing)
register_scenario_model(FlashCrowd)
register_scenario_model(LinkDegradation)
register_scenario_model(
    LinkDegradation,
    name="link-failure",
    start_s=600.0,
    ramp_s=60.0,
    residual=0.05,
    hit_fraction=0.15,
)
register_scenario_model(StepDrop)
register_scenario_model(CircuitFailover)
register_scenario_model(FlappingLink)
register_scenario_model(PathPolicySwitch)

#: Legacy name → factory(base, seed) mapping — now a live read-only
#: view of the scenario registry, so ``@register_scenario`` entries
#: appear here too.
SCENARIOS = scenario_registry.mapping

#: Composed spellings advertised by entry points (help strings, error
#: messages, the sweep axis validator).  Composition is open-ended —
#: any ``+``-join of registered names resolves — but discoverability
#: needs concrete examples, and everything listed here is covered by a
#: resolve test.
FEATURED_COMPOSITIONS: tuple[str, ...] = (
    "diurnal+flash-crowd",
    "step-drop+link-degradation",
    "circuit-failover+circuit-flap",
)


def scenario_names(include_composed: bool = False) -> tuple[str, ...]:
    """All registered scenario names, sorted (atomic names first).

    Registered names are atomic; any ``+``-join of them also resolves
    (``scenario("diurnal+flash-crowd")``).  With ``include_composed``,
    the :data:`FEATURED_COMPOSITIONS` examples are appended so entry
    points that print "known scenarios" advertise the composition
    syntax with names that actually work.
    """
    names = scenario_registry.names()
    if include_composed:
        names += tuple(
            name for name in FEATURED_COMPOSITIONS if scenario_known(name)
        )
    return names


def _split_composed(name: str) -> list[str]:
    """The atomic parts of a (possibly ``+``-composed) scenario name."""
    return [part.strip() for part in name.split("+") if part.strip()]


def scenario_known(name: str) -> bool:
    """Whether :func:`scenario` would resolve ``name``.

    The single source of truth for composition syntax — entry-point
    validators (the CLI) call this instead of re-parsing ``+`` chains.
    """
    parts = _split_composed(name)
    return bool(parts) and all(part in scenario_registry for part in parts)


def scenario(
    name: str,
    seed: int = 7,
    base: FluctuationModel | StaticModel | None = None,
) -> ScenarioModel:
    """Build a named scenario over ``base`` weather (seeded default).

    ``+`` composes registered scenarios into one model —
    ``scenario("diurnal+flash-crowd")`` stacks a flash crowd on the
    diurnal swing.

    >>> scenario("step-drop", seed=3).factor(0, 1, 0.0) > 0
    True
    """
    if "+" in name:
        shared = _base(base, seed)
        parts = tuple(
            scenario(part, seed=seed, base=shared)
            for part in _split_composed(name)
        )
        if not parts:
            raise KeyError(f"empty composed scenario {name!r}")
        return ComposedScenario(shared, seed, name=name, parts=parts)
    factory = scenario_registry.get(name)
    return factory(base, seed)
