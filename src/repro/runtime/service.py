"""The WANify runtime service: gauge → plan → watch → re-plan, forever.

:class:`PipelineService` owns one
:class:`~repro.gda.engine.cluster.GeoCluster` and a composed
:class:`~repro.pipeline.core.Pipeline`, and keeps the control loop
running while the :class:`~repro.runtime.scheduler.JobScheduler`
admits and executes jobs:

1. **gauge** — snapshot the live network (through the pipeline's
   :class:`~repro.pipeline.stages.Gauger` stage) and predict stable
   runtime BWs with the trained model (the paper's online module);
2. **plan** — build the configured deployment *variant* through the
   variant registry (``wanify-tc`` by default: global optimizer + AIMD
   agents + throttling); agents publish their monitor samples to the
   shared :class:`~repro.runtime.telemetry.TelemetryStore`;
3. **watch** — a periodic :class:`~repro.runtime.drift.DriftDetector`
   check compares telemetry capacity estimates with the prediction;
4. **re-plan** — on a fired event the service re-gauges, rebuilds the
   deployment, and swaps the scheduler's decision matrix so *later
   stages of running jobs* place work against the fresh view.

``online=False`` freezes the loop after the initial plan — the static
baseline the online-vs-static experiment compares against.

When the config enables any control-plane feature (``preemption``
other than ``"none"``, ``governor``, or ``autoscale``) the service
also runs a :class:`~repro.runtime.control.plane.ControlPlane` tick
alongside the drift watcher: preempting slack-rich runs for
deadline-critical queued jobs, shifting WAN share between running
jobs, and autoscaling ``max_concurrent`` — see docs/OPERATIONS.md.

Training uses the *base* weather (normal conditions); the cluster runs
the *scenario* weather.  The divergence between the two is precisely
what the drift detector exists to catch.

Every service knob — including the pipeline's ``variant`` and the
scheduler's default placement ``policy`` — lives in
:class:`~repro.pipeline.config.ServiceConfig`, resolvable through the
layered config system from code, files, env vars, or the CLI.

:class:`WANifyService` remains as a deprecated alias.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Optional

from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.dag import JobSpec
from repro.net.matrix import BandwidthMatrix
from repro.net.profiles import network_profile
from repro.pipeline.config import ServiceConfig
from repro.pipeline.core import Pipeline
from repro.pipeline.deploy import Deployment
from repro.runtime.control.plane import ControlPlane
from repro.runtime.drift import DriftDetector, ReplanEvent
from repro.runtime.observability.hub import ObservabilityHub
from repro.runtime.recalibrator import CapacityRecalibrator
from repro.runtime.scenarios import scenario
from repro.runtime.scheduler import JobScheduler, JobTicket, PolicySpec
from repro.runtime.scheduling import SLO, spread_slos
from repro.runtime.scheduling.shards import ShardedScheduler
from repro.runtime.telemetry import TelemetryStore
from repro.sim.kernel import Process
from repro.core.agent import LocalAgent

import numpy as np

__all__ = [
    "PipelineService",
    "ServiceConfig",
    "ServiceSummary",
    "WANifyService",
    "default_job_mix",
]


@dataclass
class ServiceSummary:
    """What a service run produced, for tables and assertions.

    Built from :meth:`JobScheduler.stats
    <repro.runtime.scheduler.JobScheduler.stats>` plus the gauger's
    ledger, the re-plan log, and the control plane's counters.  Safe
    to take mid-run: before anything completes the stats side reports
    its zero values — counters and averages 0.0, but the *ratio*
    metrics (``fairness``, ``slo_attainment``) 1.0, since nothing has
    yet been unfair or broken.
    """

    completed: int
    mean_wait_s: float
    mean_jct_s: float
    total_jct_s: float
    makespan_s: float
    jobs_per_hour: float
    fairness: float
    replans: int
    telemetry_samples: int
    #: Probe accounting read off the gauger's ledger — zero across the
    #: board for a passive-telemetry run.
    probe_transfers: int = 0
    probe_gb: float = 0.0
    probe_cost_usd: float = 0.0
    #: The admission policy the scheduler ran under.
    scheduler: str = "fifo"
    #: Deadline accounting: jobs that finished within / past their SLO
    #: deadline (jobs without a deadline count in neither).
    slo_attained: int = 0
    slo_missed: int = 0
    #: ``attained / (attained + missed)`` — 1.0 when nothing promised
    #: a deadline.
    slo_attainment: float = 1.0
    #: The slice of probe cost charged to drift-triggered re-gauges —
    #: re-planning is no longer free, and this is its bill.
    replan_probe_transfers: int = 0
    replan_probe_gb: float = 0.0
    replan_cost_usd: float = 0.0
    #: Control-plane interventions (all zero when the control plane is
    #: disabled — the default).  ``preemptions`` counts slot swaps
    #: executed by the configured preemption policy; ``migrations`` the
    #: subset whose victim resumed under a re-resolved placement
    #: policy; ``throttle_moves`` / ``throttle_releases`` the
    #: governor's cap ledger (equal once a run has drained — the
    #: no-leaked-throttles invariant).
    preemptions: int = 0
    migrations: int = 0
    throttle_moves: int = 0
    throttle_releases: int = 0
    #: Highest concurrency reached: the autoscaler's high-water bound
    #: when autoscaling, otherwise the scheduler's achieved peak.
    concurrency_high_water: int = 0
    #: Observability-hub statistics (all zero with the hub disabled):
    #: ``rollup_rows`` counts link-level warehouse rollup rows across
    #: every grain, ``events_traced`` the events ever recorded into
    #: the trace ring, ``metrics_scrapes`` the ``/metrics`` fetches
    #: served.  Sweep reports carry all three, so observability
    #: overhead is comparable across cells.
    rollup_rows: int = 0
    events_traced: int = 0
    metrics_scrapes: int = 0
    #: Online-tuner statistics (all zero/empty with ``tuner = "none"``,
    #: the default): ``policy_switches`` counts bandit-driven policy
    #: swaps the switcher applied, ``tuner_arm_stats`` is the per-arm
    #: ``{pulls, rewarded, total_reward, mean_reward}`` ledger for the
    #: arms it actually pulled.
    policy_switches: int = 0
    tuner_arm_stats: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Scale-out statistics: how many scheduler shards served the run
    #: (1 = the plain single-queue scheduler) and how many queued
    #: tickets work-stealing moved between them (always 0 unsharded).
    scheduler_shards: int = 1
    work_steals: int = 0
    #: Process-parallel execution: worker processes the partitioned
    #: shard executor used for the last :meth:`PipelineService
    #: .drain_parallel` (0 = the serial in-process path, also the
    #: value when the service never drained in parallel) and the
    #: wall-clock seconds that drain took end to end.
    shard_worker_count: int = 0
    parallel_wall_s: float = 0.0
    #: The transfer-advancement kernel the WAN simulator ran
    #: (``scalar`` or ``vectorized``), and whether a requested
    #: vectorized kernel silently degraded because numpy was missing.
    kernel: str = "scalar"
    kernel_fallback: bool = False
    #: Continuous-recalibration statistics (all zero with
    #: ``recalibrate = False``, the default): ``recalibrations`` counts
    #: executed recalibrator ticks, ``recal_adjustments`` the
    #: cumulative per-link capacity moves those ticks published.
    recalibrations: int = 0
    recal_adjustments: int = 0
    events: list[ReplanEvent] = field(default_factory=list)

    def to_row(self) -> dict[str, float]:
        """Flat dict for table rendering."""
        return {
            "completed": float(self.completed),
            "mean_wait_s": self.mean_wait_s,
            "mean_jct_s": self.mean_jct_s,
            "total_jct_s": self.total_jct_s,
            "makespan_s": self.makespan_s,
            "jobs_per_hour": self.jobs_per_hour,
            "fairness": self.fairness,
            "replans": float(self.replans),
            "probe_transfers": float(self.probe_transfers),
            "probe_gb": self.probe_gb,
            "probe_cost_usd": self.probe_cost_usd,
            "slo_attained": float(self.slo_attained),
            "slo_missed": float(self.slo_missed),
            "slo_attainment": self.slo_attainment,
            "replan_probe_transfers": float(self.replan_probe_transfers),
            "replan_probe_gb": self.replan_probe_gb,
            "replan_cost_usd": self.replan_cost_usd,
            "preemptions": float(self.preemptions),
            "migrations": float(self.migrations),
            "throttle_moves": float(self.throttle_moves),
            "throttle_releases": float(self.throttle_releases),
            "concurrency_high_water": float(self.concurrency_high_water),
            "rollup_rows": float(self.rollup_rows),
            "events_traced": float(self.events_traced),
            "metrics_scrapes": float(self.metrics_scrapes),
            "policy_switches": float(self.policy_switches),
            "tuner_arms_explored": float(len(self.tuner_arm_stats)),
            "scheduler_shards": float(self.scheduler_shards),
            "work_steals": float(self.work_steals),
            "shard_worker_count": float(self.shard_worker_count),
            "parallel_wall_s": self.parallel_wall_s,
            "kernel_fallback": float(self.kernel_fallback),
            "recalibrations": float(self.recalibrations),
            "recal_adjustments": float(self.recal_adjustments),
        }


class PipelineService:
    """Long-running multi-job WANify over one shared cluster.

    Built on a :class:`~repro.pipeline.core.Pipeline`: the service's
    gauge/predict/plan steps are the pipeline's stages, and the
    deployment each (re-)plan installs comes from the configured
    variant's registered strategy.
    """

    def __init__(
        self,
        cluster: GeoCluster,
        pipeline: Pipeline,
        config: Optional[ServiceConfig] = None,
    ) -> None:
        self.cluster = cluster
        self.pipeline = pipeline
        self.config = config if config is not None else ServiceConfig()
        self.telemetry = TelemetryStore(
            window_s=self.config.telemetry_window_s
        )
        # Telemetry handoff: a gauger that can consume the shared store
        # (the passive-telemetry alternate) gets it before first gauge.
        binder = getattr(self.pipeline.gauger, "bind_telemetry", None)
        if callable(binder):
            binder(self.telemetry)
        scheduler_kwargs = dict(
            max_concurrent=self.config.max_concurrent,
            decision_bw=lambda: self.predicted,
            default_policy=self.config.policy,
            admission=self.config.scheduler,
            default_slo=(
                SLO(deadline_s=self.config.slo_deadline_s)
                if self.config.slo_deadline_s is not None
                else None
            ),
            admit_batch=self.config.admit_batch,
        )
        # scheduler_shards == 1 constructs the plain JobScheduler, not
        # a one-shard ShardedScheduler: the default must stay
        # byte-identical to the pre-sharding service.
        if self.config.scheduler_shards > 1:
            self.scheduler = ShardedScheduler(
                cluster,
                shards=self.config.scheduler_shards,
                **scheduler_kwargs,
            )
        else:
            self.scheduler = JobScheduler(cluster, **scheduler_kwargs)
        self.predicted: Optional[BandwidthMatrix] = None
        self.deployment: Optional[Deployment] = None
        self.detector: Optional[DriftDetector] = None
        self.control: Optional[ControlPlane] = None
        self.hub: Optional[ObservabilityHub] = None
        self.recalibrator: Optional[CapacityRecalibrator] = None
        self.replans: list[ReplanEvent] = []
        self._drift_process: Optional[Process] = None
        self._recal_process: Optional[Process] = None
        self._started = False
        #: State of the last :meth:`drain_parallel` (``None`` until one
        #: runs): the merged statistics row, the worker count actually
        #: used, whether the pool degraded to serial, and the
        #: wall-clock seconds the drain took.
        self.parallel_stats: Optional[dict[str, float]] = None
        self.parallel_records: list = []
        self.parallel_workers = 0
        self.parallel_fell_back = False
        self.parallel_wall_s = 0.0

    # -- construction ---------------------------------------------------

    @classmethod
    def build(
        cls,
        config: Optional[ServiceConfig] = None,
        weather: Optional[object] = None,
        pipeline: Optional[Pipeline] = None,
    ) -> "PipelineService":
        """Build, train, and start a service from a config.

        The prediction model trains on the profile's *base* weather;
        the live cluster runs the configured *scenario* on top of it.
        Pass ``weather`` (any ``factor``/``snapshot_jitter`` model) to
        override the named scenario — e.g. a
        :class:`~repro.runtime.scenarios.StepDrop` with custom timing.
        Pass ``pipeline`` to reuse a pre-built (possibly pre-trained)
        pipeline — the sweep runner shares one trained predictor
        across matrix cells this way.
        """
        config = config if config is not None else ServiceConfig()
        profile = network_profile(config.profile)
        base = profile.fluctuation(seed=config.seed)
        if weather is None:
            weather = (
                scenario(config.scenario, seed=config.seed, base=base)
                if config.scenario is not None
                else base
            )
        cluster = GeoCluster.build(
            config.regions,
            config.vm,
            fluctuation=weather,
            profile=profile,
            kernel=config.kernel,
        )
        if pipeline is None:
            pipeline = Pipeline(cluster.topology, base, config)
        if not pipeline.is_trained:
            pipeline.train()
        service = cls(cluster, pipeline, config)
        service.start()
        return service

    # -- legacy surface -------------------------------------------------

    @property
    def wanify(self) -> Pipeline:
        """Legacy name for the service's pipeline."""
        return self.pipeline

    @property
    def plan(self):
        """The currently installed :class:`GlobalPlan` (if any)."""
        return self.deployment.plan if self.deployment is not None else None

    @property
    def agents(self) -> list[LocalAgent]:
        """The currently running AIMD agents (empty when torn down)."""
        if self.deployment is None:
            return []
        return self.deployment.agents_running

    # -- control loop ---------------------------------------------------

    @property
    def network(self):
        """The cluster's live network simulator."""
        return self.cluster.network

    @property
    def sim(self):
        """The shared simulation kernel."""
        return self.network.sim

    def start(self) -> None:
        """Initial gauge + plan + agent deployment; arms the watcher."""
        if self._started:
            raise RuntimeError("service already started")
        self._started = True
        self.predicted = self._gauge()
        self._install(self.predicted)
        self.detector = DriftDetector(
            self.telemetry,
            self.predicted,
            threshold=self.config.drift_threshold,
            cooldown_s=self.config.cooldown_s,
        )
        if self.config.online:
            self._drift_process = Process(
                self.sim,
                self.config.check_interval_s,
                self._check,
                start_delay=self.config.check_interval_s,
                priority=5,
            )
        # Continuous capacity recalibration: a background gauger that
        # walks the published decision matrix toward the p95 of
        # observed throughput, guarded by floor/ceiling/step clamps.
        # Priority 4: recalibration lands *before* a same-instant drift
        # check, so drift judges the freshest capacity view.
        if self.config.recalibrate:
            self.recalibrator = CapacityRecalibrator(
                self.telemetry,
                self.predicted,
                percentile=self.config.recal_percentile,
                window_s=self.config.recal_window_s,
                floor_fraction=self.config.recal_floor_fraction,
                ceiling_fraction=self.config.recal_ceiling_fraction,
                max_step_fraction=self.config.recal_max_step_fraction,
                min_samples=self.config.recal_min_samples,
                link_ceiling=self._topology_ceiling,
                on_publish=self._recal_publish,
            )
            self._recal_process = Process(
                self.sim,
                self.config.recal_interval_s,
                self.recalibrator.tick,
                start_delay=self.config.recal_interval_s,
                priority=4,
            )
        # The control plane only exists when asked for: a default
        # config changes nothing about existing runs.
        if (
            self.config.preemption != "none"
            or self.config.governor
            or self.config.autoscale
            or self.config.tuner != "none"
        ):
            self.control = ControlPlane(
                self.scheduler,
                self.config,
                predicted_bw=lambda: self.predicted,
                # Deferred: the hub (and its warehouse) is built after
                # the plane, and only when observability is on.
                warehouse=lambda: (
                    self.hub.log if self.hub is not None else None
                ),
            )
        # Observability last: the hub hooks into whatever the config
        # actually built (detector, control plane, gauger ledger), and
        # every hook is observation-only — disabling it changes no
        # run's numbers, only what can be seen of them.
        if self.config.observability:
            self.hub = ObservabilityHub(self)

    def _gauge(self) -> BandwidthMatrix:
        """Snapshot the *live* network weather and predict runtime BWs.

        Goes through the pipeline's gauger stage, but against the
        cluster's live (scenario) weather rather than the training
        weather the pipeline was built with.
        """
        report = self.pipeline.gauger.gauge(
            self.cluster.topology,
            self.network.fluctuation,
            self.sim.now + self.network.time_offset,
        )
        return self.pipeline.predict(report=report)

    def _install(self, predicted: BandwidthMatrix) -> None:
        """Build and install the configured variant's deployment.

        The agent knobs travel through the strategy's ``build`` so
        custom registered variants see them at build time.
        """
        deployment = self.pipeline.deployment(
            self.config.variant,
            bw=predicted,
            epoch_s=self.config.epoch_s,
            telemetry=self.telemetry,
        )
        if not self.config.throttling:
            deployment.throttling = False
        deployment.install(self.network)
        self.deployment = deployment
        # A planner that scores placement backends (the multi-backend
        # alternate) steers the scheduler: jobs submitted after this
        # (re-)plan run under the backend predicted fastest *now*.
        chosen = getattr(self.pipeline.planner, "chosen_policy", None)
        if chosen is not None:
            self.scheduler.default_policy = chosen

    def _teardown(self) -> None:
        if self.deployment is not None:
            self.deployment.teardown(self.network)

    def _topology_ceiling(self, src: str, dst: str) -> float:
        """The pair's weather-free hard capacity (Mbps).

        TCP aggregate ceiling at the configured connection budget —
        the recalibrator's "never above topology" guard rail.
        """
        topology = self.cluster.topology
        return topology.tcp.aggregate_cap_mbps(
            topology.rtt_ms(src, dst),
            self.config.max_connections,
            self.network.knee,
        )

    def _recal_publish(self, matrix: BandwidthMatrix) -> None:
        """Install a recalibrated matrix as the decision matrix.

        Everything that reads capacity through a callable sees it at
        its next decision: the scheduler's ``decision_bw`` (placement
        scoring), the control plane's ``predicted_bw`` (slack
        estimation and, when recalibrating, the governor's cap
        clamp).  The drift detector keeps its own plan-time baseline —
        recalibration tracks reality, drift judges the plan.
        """
        self.predicted = matrix
        if self.hub is not None:
            self.hub.recalibration_recorded(matrix)

    @property
    def replan_spent_usd(self) -> float:
        """Probe dollars charged to re-plans so far."""
        return sum(event.probe_cost_usd for event in self.replans)

    def _check(self, now: float) -> None:
        if self.detector is None:
            return
        if (
            self.config.max_replans is not None
            and len(self.replans) >= self.config.max_replans
        ):
            return
        if (
            self.config.replan_budget_usd is not None
            and self.replan_spent_usd >= self.config.replan_budget_usd
        ):
            return
        event = self.detector.check(now)
        if event is not None:
            self.replan(event)

    def replan(self, event: ReplanEvent) -> None:
        """Re-gauge, re-optimize, redeploy — the mid-job pivot.

        Running jobs keep their in-flight transfers; their *next*
        placement decisions read the refreshed matrix through the
        scheduler's ``decision_bw`` callable.

        Re-gauging is charged: the gauger's
        :class:`~repro.pipeline.stages.GaugeLedger` delta across the
        re-gauge (probe flows, GB, dollars) is attached to the recorded
        event, and counts against ``replan_budget_usd``.
        """
        self._teardown()
        if self.control is not None:
            # Teardown wiped the TC table; the governor's held caps
            # are gone with it and must be retired, not restored.
            self.control.on_replan()
        gauger = self.pipeline.gauger
        before = (
            int(getattr(gauger, "probe_transfers", 0)),
            float(getattr(gauger, "probe_gb", 0.0)),
            float(getattr(gauger, "probe_cost_usd", 0.0)),
        )
        self.predicted = self._gauge()
        self._install(self.predicted)
        if self.detector is not None:
            self.detector.rebase(self.predicted, self.sim.now)
        if self.recalibrator is not None:
            # The fresh plan's matrix is the new baseline: guards and
            # step sizes re-anchor, and the walk restarts from it.
            self.recalibrator.rebase(self.predicted)
        charged = event.charged(
            transfers=int(getattr(gauger, "probe_transfers", 0)) - before[0],
            gigabytes=float(getattr(gauger, "probe_gb", 0.0)) - before[1],
            dollars=float(getattr(gauger, "probe_cost_usd", 0.0)) - before[2],
        )
        self.replans.append(charged)
        if self.hub is not None:
            self.hub.replan_recorded(charged)

    def stop(self) -> None:
        """Stop agents, control plane, and watcher (queued jobs stay)."""
        if self.control is not None:
            # Release governor caps *before* teardown so each restores
            # the limit it actually replaced.
            self.control.close()
        self._teardown()
        if self._drift_process is not None:
            self._drift_process.stop()
            self._drift_process = None
        if self._recal_process is not None:
            self._recal_process.stop()
            self._recal_process = None

    # -- job interface --------------------------------------------------

    def submit(
        self,
        job: JobSpec,
        policy: PolicySpec = None,
        slo: Optional[SLO] = None,
    ) -> JobTicket:
        """Queue a job under ``policy`` (the config's default when unset).

        ``policy`` may be an instance, a registered name, or a class —
        anything :func:`repro.pipeline.registry.placement_policy`
        resolves.  ``slo`` attaches per-job promises; when unset, the
        config's ``slo_deadline_s`` (if any) applies through the
        scheduler's default SLO.
        """
        return self.scheduler.submit(job, policy, slo=slo)

    def submit_at(
        self,
        delay_s: float,
        job: JobSpec,
        policy: PolicySpec = None,
        slo: Optional[SLO] = None,
    ) -> None:
        """Queue a job ``delay_s`` simulated seconds from now."""
        self.scheduler.submit_at(delay_s, job, policy, slo=slo)

    def submit_mix(
        self, mix: list[tuple[float, JobSpec]], spread_deadlines: bool = True
    ) -> None:
        """Submit a ``(delay, job)`` mix, attaching SLOs when configured.

        With ``slo_deadline_s`` set and ``spread_deadlines`` on, the
        deadlines are heterogeneous (seeded spread around the
        configured value, via
        :func:`~repro.runtime.scheduling.slo.spread_slos`) — a uniform
        deadline would make earliest-deadline-first indistinguishable
        from FIFO.  The CLI's ``serve`` and the sweep runner submit
        through this.

        The whole mix goes through the scheduler's ``submit_many``
        bulk insert (one kernel heapify) rather than a per-job
        ``submit_at`` sift; event order is identical either way.
        """
        if self.config.slo_deadline_s is not None and spread_deadlines:
            entries = [
                (delay, job, None, slo)
                for delay, job, slo in spread_slos(
                    mix, self.config.slo_deadline_s, seed=self.config.seed
                )
            ]
        else:
            entries = [(delay, job, None, None) for delay, job in mix]
        self.scheduler.submit_many(entries)

    def run(self, until: Optional[float] = None) -> None:
        """Drive the shared simulator (open-ended: until jobs drain)."""
        self.sim.run(until=until)

    def drain_parallel(
        self, mix: list[tuple[float, JobSpec]], spread_deadlines: bool = True
    ) -> dict[str, float]:
        """Partition a mix by tenant and drain each shard in parallel.

        The multi-core alternative to :meth:`submit_mix` + :meth:`run`:
        the mix splits into ``scheduler_shards`` tenant-hashed slices
        (same CRC-32 routing as the in-process
        :class:`~repro.runtime.scheduling.shards.ShardedScheduler`),
        each slice drains as a **self-contained seeded simulation** in
        a :class:`~repro.runtime.scheduling.parallel.ShardExecutor`
        worker process (``shard_workers`` of them; 0 or 1 runs the
        shards serially in-process with byte-identical results), and
        the per-shard records merge deterministically into one
        statistics row — which :meth:`summary` then reports instead of
        the idle in-process scheduler's.

        Partitioned shards do not share a WAN and cannot steal work
        from each other; that independence is exactly what lets them
        scale across cores.  The service's control loop (drift
        watcher, control plane) does not reach into the workers — this
        is the throughput path for big batch mixes, not the online
        re-planning path.
        """
        from repro.runtime.scheduling.parallel import (
            ShardExecutor,
            build_tasks,
            merge_stats,
        )

        config = self.config
        if config.slo_deadline_s is not None and spread_deadlines:
            entries = [
                (delay, job, None, slo)
                for delay, job, slo in spread_slos(
                    mix, config.slo_deadline_s, seed=config.seed
                )
            ]
        else:
            entries = [(delay, job, None, None) for delay, job in mix]
        tasks = build_tasks(
            entries,
            max(1, config.scheduler_shards),
            regions=config.regions,
            vm=config.vm,
            profile=config.profile,
            scenario=config.scenario,
            seed=config.seed,
            kernel=config.kernel,
            admission=config.scheduler,
            default_policy=config.policy,
            max_concurrent=config.max_concurrent,
            admit_batch=config.admit_batch,
            default_slo=(
                SLO(deadline_s=config.slo_deadline_s)
                if config.slo_deadline_s is not None
                else None
            ),
        )
        executor = ShardExecutor(config.shard_workers)
        results = executor.run(tasks)
        self.parallel_records = [r for result in results for r in result.records]
        self.parallel_stats = merge_stats(results)
        self.parallel_workers = executor.workers_used
        self.parallel_fell_back = executor.fell_back
        self.parallel_wall_s = executor.wall_s
        return self.parallel_stats

    # -- reporting ------------------------------------------------------

    def summary(self) -> ServiceSummary:
        """Aggregate statistics for everything completed so far."""
        stats = self.scheduler.stats()
        if self.parallel_stats is not None:
            # A parallel drain ran outside the in-process scheduler;
            # its merged row supersedes the idle scheduler's zeros.
            stats = {**stats, **self.parallel_stats}
        gauger = self.pipeline.gauger
        return ServiceSummary(
            completed=int(stats["completed"]),
            mean_wait_s=stats["mean_wait_s"],
            mean_jct_s=stats["mean_jct_s"],
            total_jct_s=stats["total_jct_s"],
            makespan_s=stats["makespan_s"],
            jobs_per_hour=stats["jobs_per_hour"],
            fairness=stats["fairness"],
            replans=len(self.replans),
            telemetry_samples=self.telemetry.total_samples,
            probe_transfers=int(getattr(gauger, "probe_transfers", 0)),
            probe_gb=float(getattr(gauger, "probe_gb", 0.0)),
            probe_cost_usd=float(getattr(gauger, "probe_cost_usd", 0.0)),
            scheduler=self.scheduler.admission.name,
            slo_attained=int(stats["slo_attained"]),
            slo_missed=int(stats["slo_missed"]),
            slo_attainment=stats["slo_attainment"],
            replan_probe_transfers=sum(
                event.probe_transfers for event in self.replans
            ),
            replan_probe_gb=sum(event.probe_gb for event in self.replans),
            replan_cost_usd=self.replan_spent_usd,
            preemptions=(
                self.control.preemptions if self.control is not None else 0
            ),
            migrations=(
                self.control.migrations if self.control is not None else 0
            ),
            throttle_moves=(
                self.control.throttle_moves
                if self.control is not None
                else 0
            ),
            throttle_releases=(
                self.control.throttle_releases
                if self.control is not None
                else 0
            ),
            concurrency_high_water=(
                self.control.concurrency_high_water
                if self.control is not None
                else self.scheduler.peak_concurrency
            ),
            rollup_rows=(
                self.hub.rollup_rows if self.hub is not None else 0
            ),
            events_traced=(
                self.hub.events_traced if self.hub is not None else 0
            ),
            metrics_scrapes=(
                self.hub.metrics_scrapes if self.hub is not None else 0
            ),
            policy_switches=(
                self.control.policy_switches
                if self.control is not None
                else 0
            ),
            tuner_arm_stats=(
                self.control.switcher.arm_stats()
                if self.control is not None
                and self.control.switcher is not None
                else {}
            ),
            scheduler_shards=(
                int(self.parallel_stats["shards"])
                if self.parallel_stats is not None
                else getattr(self.scheduler, "shard_count", 1)
            ),
            work_steals=getattr(self.scheduler, "steal_count", 0),
            shard_worker_count=self.parallel_workers,
            parallel_wall_s=self.parallel_wall_s,
            kernel=getattr(self.network, "kernel", "scalar"),
            kernel_fallback=getattr(self.network, "kernel_fallback", False),
            recalibrations=(
                self.recalibrator.ticks
                if self.recalibrator is not None
                else 0
            ),
            recal_adjustments=(
                self.recalibrator.adjustments
                if self.recalibrator is not None
                else 0
            ),
            events=list(self.replans),
        )


class WANifyService(PipelineService):
    """Deprecated spelling of :class:`PipelineService`."""

    def __init__(
        self,
        cluster: GeoCluster,
        pipeline: Pipeline,
        config: Optional[ServiceConfig] = None,
    ) -> None:
        warnings.warn(
            "WANifyService is deprecated; use "
            "repro.runtime.service.PipelineService",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(cluster, pipeline, config)


def default_job_mix(
    keys: tuple[str, ...],
    count: int = 6,
    seed: int = 42,
    scale_mb: float = 2000.0,
) -> list[tuple[float, JobSpec]]:
    """A seeded (arrival-delay, job) mix cycling the paper's workloads.

    Inputs are skewed per job (one DC holds a double share) and arrivals
    are spaced half a mean-JCT apart, so the queue stays busy without
    saturating.  Deterministic in ``(keys, count, seed, scale_mb)``.
    """
    from repro.gda.workloads.terasort import terasort_job
    from repro.gda.workloads.tpcds import tpcds_job
    from repro.gda.workloads.wordcount import wordcount_job

    if count < 1:
        raise ValueError(f"count must be ≥ 1: {count}")
    rng = np.random.default_rng(seed)
    jobs: list[tuple[float, JobSpec]] = []
    arrival = 0.0
    for index in range(count):
        weights = rng.uniform(0.5, 1.5, size=len(keys))
        weights[rng.integers(0, len(keys))] *= 2.0
        weights /= weights.sum()
        inputs = {
            dc: float(scale_mb * w) for dc, w in zip(keys, weights)
        }
        kind = index % 3
        if kind == 0:
            job = wordcount_job(
                inputs, intermediate_mb=scale_mb * 0.8,
                name=f"wordcount-{index}",
            )
        elif kind == 1:
            job = terasort_job(inputs, name=f"terasort-{index}")
        else:
            query = (82, 95, 11, 78)[index % 4]
            job = tpcds_job(query, inputs)
            job = JobSpec(
                name=f"{job.name}-{index}",
                stages=job.stages,
                input_mb_by_dc=job.input_mb_by_dc,
            )
        jobs.append((arrival, job))
        arrival += float(rng.uniform(60.0, 240.0))
    return jobs
