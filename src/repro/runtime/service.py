"""The WANify runtime service: gauge → plan → watch → re-plan, forever.

:class:`WANifyService` owns one :class:`~repro.gda.engine.cluster.GeoCluster`
and keeps the WANify control loop running while the
:class:`~repro.runtime.scheduler.JobScheduler` admits and executes jobs:

1. **gauge** — snapshot the live network and predict stable runtime BWs
   with the trained model (the paper's online module);
2. **plan** — run the global optimizer and deploy AIMD agents (with
   throttling for the default ``wanify-tc`` variant); agents publish
   their monitor samples to the shared
   :class:`~repro.runtime.telemetry.TelemetryStore`;
3. **watch** — a periodic :class:`~repro.runtime.drift.DriftDetector`
   check compares telemetry capacity estimates with the prediction;
4. **re-plan** — on a fired event the service re-gauges, recomputes the
   :class:`~repro.core.globalopt.GlobalPlan`, redeploys agents and
   throttles, and swaps the scheduler's decision matrix so *later
   stages of running jobs* place work against the fresh view.

``online=False`` freezes the loop after the initial plan — the static
baseline the online-vs-static experiment compares against.

Training uses the *base* weather (normal conditions); the cluster runs
the *scenario* weather.  The divergence between the two is precisely
what the drift detector exists to catch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cloud.regions import PAPER_REGIONS
from repro.core.agent import LocalAgent, deploy_agents
from repro.core.globalopt import GlobalPlan
from repro.core.interface import WANify, WANifyConfig
from repro.core.localopt import EPOCH_S
from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.dag import JobSpec
from repro.gda.systems.base import PlacementPolicy
from repro.gda.systems.tetrium import TetriumPolicy
from repro.gda.workloads.terasort import terasort_job
from repro.gda.workloads.tpcds import tpcds_job
from repro.gda.workloads.wordcount import wordcount_job
from repro.net.matrix import BandwidthMatrix
from repro.net.measurement import snapshot
from repro.net.profiles import network_profile
from repro.runtime.drift import (
    DEFAULT_COOLDOWN_S,
    DEFAULT_THRESHOLD,
    DriftDetector,
    ReplanEvent,
)
from repro.runtime.scenarios import scenario
from repro.runtime.scheduler import JobScheduler, JobTicket
from repro.runtime.telemetry import TelemetryStore
from repro.sim.kernel import Process

import numpy as np


@dataclass(frozen=True)
class ServiceConfig:
    """Everything needed to build and run a service instance."""

    regions: tuple[str, ...] = PAPER_REGIONS
    vm: str = "t2.medium"
    profile: str = "vpc-peering"
    seed: int = 42
    #: Named scenario from :mod:`repro.runtime.scenarios`; ``None``
    #: runs plain seeded weather.
    scenario: Optional[str] = None
    #: ``False`` freezes the control loop after the initial plan.
    online: bool = True
    throttling: bool = True
    max_concurrent: int = 3
    epoch_s: float = EPOCH_S
    check_interval_s: float = 30.0
    drift_threshold: float = DEFAULT_THRESHOLD
    cooldown_s: float = DEFAULT_COOLDOWN_S
    max_replans: Optional[int] = None
    #: Sliding window for the shared store.  Shorter than the 300 s
    #: weather grid on purpose: the drift detector's median over this
    #: window is the re-plan trigger, and detection latency is about
    #: half the window for a persistent drop.
    telemetry_window_s: float = 120.0
    #: Training-campaign size (small defaults keep service start cheap;
    #: raise toward the paper's 120/100 for fidelity studies).
    n_training_datasets: int = 24
    n_estimators: int = 16


@dataclass
class ServiceSummary:
    """What a service run produced, for tables and assertions."""

    completed: int
    mean_wait_s: float
    mean_jct_s: float
    total_jct_s: float
    makespan_s: float
    jobs_per_hour: float
    fairness: float
    replans: int
    telemetry_samples: int
    events: list[ReplanEvent] = field(default_factory=list)

    def to_row(self) -> dict[str, float]:
        """Flat dict for table rendering."""
        return {
            "completed": float(self.completed),
            "mean_wait_s": self.mean_wait_s,
            "mean_jct_s": self.mean_jct_s,
            "total_jct_s": self.total_jct_s,
            "makespan_s": self.makespan_s,
            "jobs_per_hour": self.jobs_per_hour,
            "fairness": self.fairness,
            "replans": float(self.replans),
        }


class WANifyService:
    """Long-running multi-job WANify over one shared cluster."""

    def __init__(
        self,
        cluster: GeoCluster,
        wanify: WANify,
        config: ServiceConfig = ServiceConfig(),
    ) -> None:
        self.cluster = cluster
        self.wanify = wanify
        self.config = config
        self.telemetry = TelemetryStore(window_s=config.telemetry_window_s)
        self.scheduler = JobScheduler(
            cluster,
            max_concurrent=config.max_concurrent,
            decision_bw=lambda: self.predicted,
        )
        self.predicted: Optional[BandwidthMatrix] = None
        self.plan: Optional[GlobalPlan] = None
        self.detector: Optional[DriftDetector] = None
        self.agents: list[LocalAgent] = []
        self.replans: list[ReplanEvent] = []
        self._drift_process: Optional[Process] = None
        self._started = False

    # -- construction ---------------------------------------------------

    @classmethod
    def build(
        cls,
        config: ServiceConfig = ServiceConfig(),
        weather: Optional[object] = None,
    ) -> "WANifyService":
        """Build, train, and start a service from a config.

        The prediction model trains on the profile's *base* weather;
        the live cluster runs the configured *scenario* on top of it.
        Pass ``weather`` (any ``factor``/``snapshot_jitter`` model) to
        override the named scenario — e.g. a
        :class:`~repro.runtime.scenarios.StepDrop` with custom timing.
        """
        profile = network_profile(config.profile)
        base = profile.fluctuation(seed=config.seed)
        if weather is None:
            weather = (
                scenario(config.scenario, seed=config.seed, base=base)
                if config.scenario is not None
                else base
            )
        cluster = GeoCluster.build(
            config.regions,
            config.vm,
            fluctuation=weather,
            profile=profile,
        )
        wanify = WANify(
            cluster.topology,
            base,
            WANifyConfig(
                n_training_datasets=config.n_training_datasets,
                n_estimators=config.n_estimators,
                seed=config.seed,
            ),
        )
        wanify.train()
        service = cls(cluster, wanify, config)
        service.start()
        return service

    # -- control loop ---------------------------------------------------

    @property
    def network(self):
        """The cluster's live network simulator."""
        return self.cluster.network

    @property
    def sim(self):
        """The shared simulation kernel."""
        return self.network.sim

    def start(self) -> None:
        """Initial gauge + plan + agent deployment; arms the watcher."""
        if self._started:
            raise RuntimeError("service already started")
        self._started = True
        self.predicted = self._gauge()
        self._install(self.predicted)
        self.detector = DriftDetector(
            self.telemetry,
            self.predicted,
            threshold=self.config.drift_threshold,
            cooldown_s=self.config.cooldown_s,
        )
        if self.config.online:
            self._drift_process = Process(
                self.sim,
                self.config.check_interval_s,
                self._check,
                start_delay=self.config.check_interval_s,
                priority=5,
            )

    def _gauge(self) -> BandwidthMatrix:
        """Snapshot the *live* network weather and predict runtime BWs."""
        report = snapshot(
            self.cluster.topology,
            self.network.fluctuation,
            at_time=self.sim.now + self.network.time_offset,
        )
        return self.wanify.predict_runtime_bw(report=report)

    def _install(self, predicted: BandwidthMatrix) -> None:
        """Compute and deploy a fresh plan (agents publish telemetry)."""
        self.plan = self.wanify.make_plan(predicted)
        self.agents = deploy_agents(
            self.network,
            self.plan,
            throttling=self.config.throttling,
            epoch_s=self.config.epoch_s,
            telemetry=self.telemetry,
        )

    def _teardown_agents(self) -> None:
        for agent in self.agents:
            agent.stop()
        self.agents = []
        self.network.tc.clear_all()

    def _check(self, now: float) -> None:
        if self.detector is None:
            return
        if (
            self.config.max_replans is not None
            and len(self.replans) >= self.config.max_replans
        ):
            return
        event = self.detector.check(now)
        if event is not None:
            self.replan(event)

    def replan(self, event: ReplanEvent) -> None:
        """Re-gauge, re-optimize, redeploy — the mid-job pivot.

        Running jobs keep their in-flight transfers; their *next*
        placement decisions read the refreshed matrix through the
        scheduler's ``decision_bw`` callable.
        """
        self._teardown_agents()
        self.predicted = self._gauge()
        self._install(self.predicted)
        if self.detector is not None:
            self.detector.rebase(self.predicted, self.sim.now)
        self.replans.append(event)

    def stop(self) -> None:
        """Stop agents and the watcher (queued jobs stay queued)."""
        self._teardown_agents()
        if self._drift_process is not None:
            self._drift_process.stop()
            self._drift_process = None

    # -- job interface --------------------------------------------------

    def submit(
        self, job: JobSpec, policy: Optional[PlacementPolicy] = None
    ) -> JobTicket:
        """Queue a job under ``policy`` (Tetrium by default)."""
        return self.scheduler.submit(job, policy or TetriumPolicy())

    def submit_at(
        self,
        delay_s: float,
        job: JobSpec,
        policy: Optional[PlacementPolicy] = None,
    ) -> None:
        """Queue a job ``delay_s`` simulated seconds from now."""
        self.scheduler.submit_at(delay_s, job, policy or TetriumPolicy())

    def run(self, until: Optional[float] = None) -> None:
        """Drive the shared simulator (open-ended: until jobs drain)."""
        self.sim.run(until=until)

    # -- reporting ------------------------------------------------------

    def summary(self) -> ServiceSummary:
        """Aggregate statistics for everything completed so far."""
        stats = self.scheduler.stats()
        return ServiceSummary(
            completed=int(stats["completed"]),
            mean_wait_s=stats["mean_wait_s"],
            mean_jct_s=stats["mean_jct_s"],
            total_jct_s=stats["total_jct_s"],
            makespan_s=stats["makespan_s"],
            jobs_per_hour=stats["jobs_per_hour"],
            fairness=stats["fairness"],
            replans=len(self.replans),
            telemetry_samples=self.telemetry.total_samples,
            events=list(self.replans),
        )


def default_job_mix(
    keys: tuple[str, ...],
    count: int = 6,
    seed: int = 42,
    scale_mb: float = 2000.0,
) -> list[tuple[float, JobSpec]]:
    """A seeded (arrival-delay, job) mix cycling the paper's workloads.

    Inputs are skewed per job (one DC holds a double share) and arrivals
    are spaced half a mean-JCT apart, so the queue stays busy without
    saturating.  Deterministic in ``(keys, count, seed, scale_mb)``.
    """
    if count < 1:
        raise ValueError(f"count must be ≥ 1: {count}")
    rng = np.random.default_rng(seed)
    jobs: list[tuple[float, JobSpec]] = []
    arrival = 0.0
    for index in range(count):
        weights = rng.uniform(0.5, 1.5, size=len(keys))
        weights[rng.integers(0, len(keys))] *= 2.0
        weights /= weights.sum()
        inputs = {
            dc: float(scale_mb * w) for dc, w in zip(keys, weights)
        }
        kind = index % 3
        if kind == 0:
            job = wordcount_job(
                inputs, intermediate_mb=scale_mb * 0.8,
                name=f"wordcount-{index}",
            )
        elif kind == 1:
            job = terasort_job(inputs, name=f"terasort-{index}")
        else:
            query = (82, 95, 11, 78)[index % 4]
            job = tpcds_job(query, inputs)
            job = JobSpec(
                name=f"{job.name}-{index}",
                stages=job.stages,
                input_mb_by_dc=job.input_mb_by_dc,
            )
        jobs.append((arrival, job))
        arrival += float(rng.uniform(60.0, 240.0))
    return jobs
