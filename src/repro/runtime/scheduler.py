"""Multi-job admission and execution over the shared WAN substrate.

The scheduler keeps an admission queue and at most ``max_concurrent``
jobs in flight; each admitted job becomes a
:class:`~repro.runtime.executor.JobRun` interleaving with every other
run on the cluster's single simulator.  Because all jobs shuffle over
the same :class:`~repro.net.simulator.NetworkSimulator`, they contend
for WAN capacity exactly like co-located production queries — which is
the point: WANify's plan (and re-plans) apply to the substrate all of
them share.

*Which* queued job gets a freed slot is no longer hardwired: admission
order comes from a registered
:class:`~repro.runtime.scheduling.policies.AdmissionPolicy`
(``fifo`` by default — the legacy behavior — plus ``priority``,
``deadline-edf``, and ``fair-share``), amortized over submission
batches by the
:class:`~repro.runtime.scheduling.reallocator.BatchedReallocator` so
hundreds of queued jobs do not trigger quadratic re-ordering churn.
Per-job promises ride along as
:class:`~repro.runtime.scheduling.slo.SLO` objects on each ticket.

Per-job bookkeeping lives in :class:`JobTicket`; aggregate statistics
(throughput in jobs per simulated hour, mean wait/JCT, SLO attainment,
and a Jain fairness index over per-job achieved WAN throughput) come
from :meth:`JobScheduler.stats`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.dag import JobSpec
from repro.gda.engine.engine import SHUFFLE_OVERHEAD, JobResult
from repro.gda.systems.base import PlacementPolicy
from repro.pipeline.registry import admission_policy, placement_policy
from repro.runtime.executor import DecisionBw, JobRun
from repro.runtime.scheduling.policies import AdmissionPolicy, SchedulerView
from repro.runtime.scheduling.reallocator import DEFAULT_BATCH, BatchedReallocator
from repro.runtime.scheduling.slo import SLO, attainment, jain_index

__all__ = [
    "AdmissionSpec",
    "JobScheduler",
    "JobTicket",
    "PolicySpec",
    "jain_index",
]

#: A policy spec: an instance, a registered name, a class, or ``None``
#: for the scheduler's default.
PolicySpec = PlacementPolicy | str | type | None

#: An admission-policy spec: an instance, a registered name, or a class.
AdmissionSpec = AdmissionPolicy | str | type


@dataclass
class JobTicket:
    """One submission's lifecycle: queued → running → done."""

    job: JobSpec
    policy: PlacementPolicy
    submitted_s: float
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    run: Optional[JobRun] = None
    result: Optional[JobResult] = None
    #: The promises this submission carries (``None`` = best effort).
    slo: Optional[SLO] = None
    #: Submission sequence number — the admission policies' final
    #: tie-breaker, so equal-key tickets stay in arrival order.
    seq: int = 0

    @property
    def state(self) -> str:
        """``queued``, ``running``, or ``done``."""
        if self.finished_s is not None:
            return "done"
        if self.started_s is not None:
            return "running"
        return "queued"

    @property
    def wait_s(self) -> float:
        """Queueing delay before admission (0 while still queued)."""
        if self.started_s is None:
            return 0.0
        return self.started_s - self.submitted_s

    @property
    def jct_s(self) -> float:
        """Completion time from *submission* (includes queueing)."""
        if self.finished_s is None:
            return 0.0
        return self.finished_s - self.submitted_s

    @property
    def deadline_s(self) -> Optional[float]:
        """Absolute completion deadline (``None`` without one)."""
        if self.slo is None:
            return None
        return self.slo.deadline_at(self.submitted_s)


class JobScheduler:
    """Policy-driven admission queue + bounded concurrency over one cluster."""

    def __init__(
        self,
        cluster: GeoCluster,
        max_concurrent: int = 3,
        decision_bw: DecisionBw = None,
        shuffle_overhead: float = SHUFFLE_OVERHEAD,
        default_policy: PolicySpec = "tetrium",
        admission: AdmissionSpec = "fifo",
        default_slo: Optional[SLO] = None,
        admit_batch: int = DEFAULT_BATCH,
    ) -> None:
        if max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be ≥ 1: {max_concurrent}"
            )
        self.cluster = cluster
        self.max_concurrent = max_concurrent
        self.decision_bw = decision_bw
        self.shuffle_overhead = shuffle_overhead
        self.default_policy = default_policy
        #: Resolved admission policy (registered name / class / instance).
        self.admission: AdmissionPolicy = admission_policy(admission)
        #: SLO applied to submissions that do not carry their own.
        self.default_slo = default_slo
        self.reallocator = BatchedReallocator(self.admission, batch=admit_batch)
        self.queued: deque[JobTicket] = deque()
        self.running: list[JobTicket] = []
        self.completed: list[JobTicket] = []
        self.on_job_finished: Optional[Callable[[JobTicket], None]] = None
        #: Most jobs ever in flight at once (for concurrency assertions).
        self.peak_concurrency = 0
        self._first_submit: Optional[float] = None
        self._seq = 0

    @property
    def sim(self):
        """The shared simulator all jobs run on."""
        return self.cluster.network.sim

    def view(self) -> SchedulerView:
        """The read-only state snapshot admission policies consume."""
        return SchedulerView(
            now=self.sim.now,
            running=tuple(self.running),
            completed=tuple(self.completed),
        )

    # -- submission -----------------------------------------------------

    def submit(
        self,
        job: JobSpec,
        policy: PolicySpec = None,
        slo: Optional[SLO] = None,
    ) -> JobTicket:
        """Queue a job now; the admission policy decides when it starts.

        ``policy`` may be a :class:`PlacementPolicy` instance, a
        registered name (``"kimchi"``), a policy class, or ``None``
        for the scheduler's ``default_policy``.  ``slo`` attaches the
        job's promises (deadline / priority / fair-share weight);
        ``None`` falls back to the scheduler's ``default_slo``.
        """
        resolved = placement_policy(
            policy if policy is not None else self.default_policy
        )
        ticket = JobTicket(
            job,
            resolved,
            submitted_s=self.sim.now,
            slo=slo if slo is not None else self.default_slo,
            seq=self._seq,
        )
        self._seq += 1
        if self._first_submit is None:
            self._first_submit = self.sim.now
        self.queued.append(ticket)
        self.reallocator.note_submit()
        self._admit()
        return ticket

    def submit_at(
        self,
        delay_s: float,
        job: JobSpec,
        policy: PolicySpec = None,
        slo: Optional[SLO] = None,
    ) -> None:
        """Schedule a submission ``delay_s`` seconds from now."""
        self.sim.schedule(delay_s, lambda: self.submit(job, policy, slo))

    def _admit(self) -> None:
        while self.queued and len(self.running) < self.max_concurrent:
            # ``self.view`` is passed as a factory: the state snapshot
            # is only taken when the reallocator actually re-orders.
            ticket = self.reallocator.pop(self.queued, self.view)
            self.queued.remove(ticket)
            ticket.started_s = self.sim.now
            self.running.append(ticket)
            self.peak_concurrency = max(
                self.peak_concurrency, len(self.running)
            )
            ticket.run = JobRun(
                self.cluster,
                ticket.job,
                ticket.policy,
                decision_bw=self.decision_bw,
                shuffle_overhead=self.shuffle_overhead,
                on_finish=lambda result, t=ticket: self._finished(t, result),
            )
            ticket.run.start()

    def _finished(self, ticket: JobTicket, result: JobResult) -> None:
        ticket.result = result
        ticket.finished_s = self.sim.now
        self.running.remove(ticket)
        self.completed.append(ticket)
        self.reallocator.note_finish()
        if self.on_job_finished is not None:
            self.on_job_finished(ticket)
        self._admit()

    # -- statistics -----------------------------------------------------

    #: Every key :meth:`stats` reports, with its before-anything-
    #: finished value.  Kept explicit (and returned wholesale in the
    #: empty case) so a stats call mid-run — jobs queued or running,
    #: none finished — can never divide by a zero completion count.
    ZERO_STATS: dict[str, float] = {
        "completed": 0.0,
        "mean_wait_s": 0.0,
        "mean_jct_s": 0.0,
        "total_jct_s": 0.0,
        "makespan_s": 0.0,
        "jobs_per_hour": 0.0,
        "fairness": 1.0,
        "slo_attained": 0.0,
        "slo_missed": 0.0,
        "slo_attainment": 1.0,
    }

    def stats(self) -> dict[str, float]:
        """Aggregate completion statistics for the run so far.

        Safe at any point in a run: before the first completion (even
        with jobs queued or running) every metric is its zero value and
        nothing divides by the empty completion count.
        """
        done = self.completed
        if not done or self._first_submit is None:
            return dict(self.ZERO_STATS)
        makespan = max(t.finished_s for t in done) - self._first_submit
        throughputs = [
            t.result.wan_gb * 8.0 * 1024.0 / t.result.network_s
            for t in done
            if t.result is not None and t.result.network_s > 0
        ]
        attained, missed = attainment(done)
        with_deadline = attained + missed
        return {
            "completed": float(len(done)),
            "mean_wait_s": sum(t.wait_s for t in done) / len(done),
            "mean_jct_s": sum(t.jct_s for t in done) / len(done),
            "total_jct_s": sum(t.jct_s for t in done),
            "makespan_s": makespan,
            "jobs_per_hour": (
                len(done) / (makespan / 3600.0) if makespan > 0 else 0.0
            ),
            "fairness": jain_index(throughputs),
            "slo_attained": float(attained),
            "slo_missed": float(missed),
            # Deadline-free runs report perfect attainment — nothing
            # was promised, so nothing was broken.
            "slo_attainment": (
                attained / with_deadline if with_deadline > 0 else 1.0
            ),
        }
