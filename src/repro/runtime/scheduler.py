"""Multi-job admission and execution over the shared WAN substrate.

The scheduler keeps a FIFO admission queue and at most
``max_concurrent`` jobs in flight; each admitted job becomes a
:class:`~repro.runtime.executor.JobRun` interleaving with every other
run on the cluster's single simulator.  Because all jobs shuffle over
the same :class:`~repro.net.simulator.NetworkSimulator`, they contend
for WAN capacity exactly like co-located production queries — which is
the point: WANify's plan (and re-plans) apply to the substrate all of
them share.

Per-job bookkeeping lives in :class:`JobTicket`; aggregate statistics
(throughput in jobs per simulated hour, mean wait/JCT, and a Jain
fairness index over per-job achieved WAN throughput) come from
:meth:`JobScheduler.stats`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.dag import JobSpec
from repro.gda.engine.engine import SHUFFLE_OVERHEAD, JobResult
from repro.gda.systems.base import PlacementPolicy
from repro.pipeline.registry import placement_policy
from repro.runtime.executor import DecisionBw, JobRun

#: A policy spec: an instance, a registered name, a class, or ``None``
#: for the scheduler's default.
PolicySpec = PlacementPolicy | str | type | None


@dataclass
class JobTicket:
    """One submission's lifecycle: queued → running → done."""

    job: JobSpec
    policy: PlacementPolicy
    submitted_s: float
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    run: Optional[JobRun] = None
    result: Optional[JobResult] = None

    @property
    def state(self) -> str:
        """``queued``, ``running``, or ``done``."""
        if self.finished_s is not None:
            return "done"
        if self.started_s is not None:
            return "running"
        return "queued"

    @property
    def wait_s(self) -> float:
        """Queueing delay before admission (0 while still queued)."""
        if self.started_s is None:
            return 0.0
        return self.started_s - self.submitted_s

    @property
    def jct_s(self) -> float:
        """Completion time from *submission* (includes queueing)."""
        if self.finished_s is None:
            return 0.0
        return self.finished_s - self.submitted_s


def jain_index(values: list[float]) -> float:
    """Jain's fairness index: 1 = perfectly even, → 1/n = one hog.

    >>> round(jain_index([10.0, 10.0, 10.0]), 3)
    1.0
    """
    positives = [v for v in values if v > 0]
    if not positives:
        return 1.0
    total = sum(positives)
    squares = sum(v * v for v in positives)
    return total * total / (len(positives) * squares)


class JobScheduler:
    """FIFO admission queue + bounded concurrency over one cluster."""

    def __init__(
        self,
        cluster: GeoCluster,
        max_concurrent: int = 3,
        decision_bw: DecisionBw = None,
        shuffle_overhead: float = SHUFFLE_OVERHEAD,
        default_policy: PolicySpec = "tetrium",
    ) -> None:
        if max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be ≥ 1: {max_concurrent}"
            )
        self.cluster = cluster
        self.max_concurrent = max_concurrent
        self.decision_bw = decision_bw
        self.shuffle_overhead = shuffle_overhead
        self.default_policy = default_policy
        self.queued: deque[JobTicket] = deque()
        self.running: list[JobTicket] = []
        self.completed: list[JobTicket] = []
        self.on_job_finished: Optional[Callable[[JobTicket], None]] = None
        #: Most jobs ever in flight at once (for concurrency assertions).
        self.peak_concurrency = 0
        self._first_submit: Optional[float] = None

    @property
    def sim(self):
        """The shared simulator all jobs run on."""
        return self.cluster.network.sim

    # -- submission -----------------------------------------------------

    def submit(
        self, job: JobSpec, policy: PolicySpec = None
    ) -> JobTicket:
        """Queue a job now; it starts as soon as a slot frees up.

        ``policy`` may be a :class:`PlacementPolicy` instance, a
        registered name (``"kimchi"``), a policy class, or ``None``
        for the scheduler's ``default_policy``.
        """
        resolved = placement_policy(
            policy if policy is not None else self.default_policy
        )
        ticket = JobTicket(job, resolved, submitted_s=self.sim.now)
        if self._first_submit is None:
            self._first_submit = self.sim.now
        self.queued.append(ticket)
        self._admit()
        return ticket

    def submit_at(
        self, delay_s: float, job: JobSpec, policy: PolicySpec = None
    ) -> None:
        """Schedule a submission ``delay_s`` seconds from now."""
        self.sim.schedule(delay_s, lambda: self.submit(job, policy))

    def _admit(self) -> None:
        while self.queued and len(self.running) < self.max_concurrent:
            ticket = self.queued.popleft()
            ticket.started_s = self.sim.now
            self.running.append(ticket)
            self.peak_concurrency = max(
                self.peak_concurrency, len(self.running)
            )
            ticket.run = JobRun(
                self.cluster,
                ticket.job,
                ticket.policy,
                decision_bw=self.decision_bw,
                shuffle_overhead=self.shuffle_overhead,
                on_finish=lambda result, t=ticket: self._finished(t, result),
            )
            ticket.run.start()

    def _finished(self, ticket: JobTicket, result: JobResult) -> None:
        ticket.result = result
        ticket.finished_s = self.sim.now
        self.running.remove(ticket)
        self.completed.append(ticket)
        if self.on_job_finished is not None:
            self.on_job_finished(ticket)
        self._admit()

    # -- statistics -----------------------------------------------------

    def stats(self) -> dict[str, float]:
        """Aggregate completion statistics for the run so far."""
        done = self.completed
        if not done or self._first_submit is None:
            return {
                "completed": 0.0,
                "mean_wait_s": 0.0,
                "mean_jct_s": 0.0,
                "total_jct_s": 0.0,
                "makespan_s": 0.0,
                "jobs_per_hour": 0.0,
                "fairness": 1.0,
            }
        makespan = max(t.finished_s for t in done) - self._first_submit
        throughputs = [
            t.result.wan_gb * 8.0 * 1024.0 / t.result.network_s
            for t in done
            if t.result is not None and t.result.network_s > 0
        ]
        return {
            "completed": float(len(done)),
            "mean_wait_s": sum(t.wait_s for t in done) / len(done),
            "mean_jct_s": sum(t.jct_s for t in done) / len(done),
            "total_jct_s": sum(t.jct_s for t in done),
            "makespan_s": makespan,
            "jobs_per_hour": (
                len(done) / (makespan / 3600.0) if makespan > 0 else 0.0
            ),
            "fairness": jain_index(throughputs),
        }
