"""Multi-job admission and execution over the shared WAN substrate.

The scheduler keeps an admission queue and at most ``max_concurrent``
jobs in flight; each admitted job becomes a
:class:`~repro.runtime.executor.JobRun` interleaving with every other
run on the cluster's single simulator.  Because all jobs shuffle over
the same :class:`~repro.net.simulator.NetworkSimulator`, they contend
for WAN capacity exactly like co-located production queries — which is
the point: WANify's plan (and re-plans) apply to the substrate all of
them share.

*Which* queued job gets a freed slot is no longer hardwired: admission
order comes from a registered
:class:`~repro.runtime.scheduling.policies.AdmissionPolicy`
(``fifo`` by default — the legacy behavior — plus ``priority``,
``deadline-edf``, and ``fair-share``), amortized over submission
batches by the
:class:`~repro.runtime.scheduling.reallocator.BatchedReallocator` so
hundreds of queued jobs do not trigger quadratic re-ordering churn.
Per-job promises ride along as
:class:`~repro.runtime.scheduling.slo.SLO` objects on each ticket.

The scheduler is also the control plane's mechanism layer: a
:class:`~repro.runtime.control.plane.ControlPlane` may
:meth:`~JobScheduler.preempt` a running ticket (checkpointing its
completed-stage state and handing the slot to a named beneficiary) and
re-target the concurrency bound via
:meth:`~JobScheduler.set_max_concurrent`.

Per-job bookkeeping lives in :class:`JobTicket`; aggregate statistics
(throughput in jobs per simulated hour, mean wait/JCT, SLO attainment,
and a Jain fairness index over per-job achieved WAN throughput) come
from :meth:`JobScheduler.stats`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.dag import JobSpec
from repro.gda.engine.engine import SHUFFLE_OVERHEAD, JobResult
from repro.gda.systems.base import PlacementPolicy
from repro.pipeline.registry import admission_policy, placement_policy
from repro.runtime.executor import DecisionBw, JobCheckpoint, JobRun
from repro.runtime.scheduling.policies import AdmissionPolicy, SchedulerView
from repro.runtime.scheduling.reallocator import DEFAULT_BATCH, BatchedReallocator
from repro.runtime.scheduling.slo import SLO, attainment, jain_index

__all__ = [
    "AdmissionSpec",
    "JobScheduler",
    "JobTicket",
    "PolicySpec",
    "ZERO_STATS",
    "aggregate_stats",
    "jain_index",
]

#: A policy spec: an instance, a registered name, a class, or ``None``
#: for the scheduler's default.
PolicySpec = PlacementPolicy | str | type | None

#: An admission-policy spec: an instance, a registered name, or a class.
AdmissionSpec = AdmissionPolicy | str | type

#: Every key :func:`aggregate_stats` reports, with its
#: before-anything-finished value.  Kept explicit (and returned
#: wholesale in the empty case) so a stats call mid-run — jobs queued
#: or running, none finished — can never divide by a zero completion
#: count.
ZERO_STATS: dict[str, float] = {
    "completed": 0.0,
    "mean_wait_s": 0.0,
    "mean_jct_s": 0.0,
    "total_jct_s": 0.0,
    "makespan_s": 0.0,
    "jobs_per_hour": 0.0,
    "fairness": 1.0,
    "slo_attained": 0.0,
    "slo_missed": 0.0,
    "slo_attainment": 1.0,
}


def aggregate_stats(
    done: list["JobTicket"], first_submit: Optional[float]
) -> dict[str, float]:
    """Completion statistics over any collection of finished tickets.

    The shared aggregation behind :meth:`JobScheduler.stats` and
    :meth:`~repro.runtime.scheduling.shards.ShardedScheduler.stats` —
    a sharded scheduler merges its shards' completed tickets and
    reports one population, so single- and multi-shard runs are
    directly comparable.  Returns :data:`ZERO_STATS` wholesale before
    anything finishes; note the *ratio* metrics' zero values are 1.0
    (``fairness``, ``slo_attainment``: nothing has been unfair or
    broken yet), while the counters and averages are 0.0.
    """
    if not done or first_submit is None:
        return dict(ZERO_STATS)
    makespan = max(t.finished_s for t in done) - first_submit
    throughputs = [
        t.result.wan_gb * 8.0 * 1024.0 / t.result.network_s
        for t in done
        if t.result is not None and t.result.network_s > 0
    ]
    attained, missed = attainment(done)
    with_deadline = attained + missed
    return {
        "completed": float(len(done)),
        "mean_wait_s": sum(t.wait_s for t in done) / len(done),
        "mean_jct_s": sum(t.jct_s for t in done) / len(done),
        "total_jct_s": sum(t.jct_s for t in done),
        "makespan_s": makespan,
        "jobs_per_hour": (
            len(done) / (makespan / 3600.0) if makespan > 0 else 0.0
        ),
        "fairness": jain_index(throughputs),
        "slo_attained": float(attained),
        "slo_missed": float(missed),
        # Deadline-free runs report perfect attainment — nothing
        # was promised, so nothing was broken.
        "slo_attainment": (
            attained / with_deadline if with_deadline > 0 else 1.0
        ),
    }


@dataclass(eq=False)
class JobTicket:
    """One submission's lifecycle: queued → running → done.

    A preempted ticket loops back: running → queued (carrying a
    :class:`~repro.runtime.executor.JobCheckpoint`) → running again
    when re-admitted.

    Tickets compare by *identity* (``eq=False``): two submissions of
    the same job at the same instant are still distinct tickets, so
    queue membership and removal must never confuse them — and the
    admission path's ``deque.remove`` scans become pointer compares
    instead of fifteen-field dataclass comparisons.
    """

    job: JobSpec
    policy: PlacementPolicy
    submitted_s: float
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    run: Optional[JobRun] = None
    result: Optional[JobResult] = None
    #: The promises this submission carries (``None`` = best effort).
    slo: Optional[SLO] = None
    #: Submission sequence number — the admission policies' final
    #: tie-breaker, so equal-key tickets stay in arrival order.
    seq: int = 0
    #: ``True`` when the caller passed an explicit placement policy at
    #: submit.  A pinned policy is the user's choice and is never
    #: overwritten by preemption-migration; only tickets that took the
    #: scheduler's default may be re-pointed when that default moves.
    policy_pinned: bool = False
    #: Completed-stage state saved by the last preemption; consumed
    #: (and cleared) when the ticket is re-admitted.
    checkpoint: Optional[JobCheckpoint] = None
    #: How many times this ticket has been preempted.
    preemptions: int = 0
    #: When the last preemption happened (thrash-guard input for
    #: preemption policies; ``None`` = never preempted).
    preempted_at: Optional[float] = None
    #: When this ticket last (re-)entered the queue — feeds the
    #: cumulative :attr:`waited_s` accounting on admission.
    enqueued_s: float = 0.0
    #: Total seconds spent queued across every admission (a preempted
    #: ticket queues more than once).
    waited_s: float = 0.0

    @property
    def state(self) -> str:
        """``queued``, ``running``, or ``done``."""
        if self.finished_s is not None:
            return "done"
        if self.started_s is not None:
            return "running"
        return "queued"

    @property
    def wait_s(self) -> float:
        """Cumulative queueing delay (0 while never yet admitted).

        For a preempted-and-resumed ticket this sums *every* stint in
        the queue — initial admission wait plus each wait between
        preemption and resume — and never counts execution time
        (``wait_s + execution ≤ jct_s``; the difference is work a
        preemption discarded).
        """
        if self.started_s is None:
            return 0.0
        return self.waited_s

    @property
    def jct_s(self) -> float:
        """Completion time from *submission* (includes queueing)."""
        if self.finished_s is None:
            return 0.0
        return self.finished_s - self.submitted_s

    @property
    def deadline_s(self) -> Optional[float]:
        """Absolute completion deadline (``None`` without one)."""
        if self.slo is None:
            return None
        return self.slo.deadline_at(self.submitted_s)


class JobScheduler:
    """Policy-driven admission queue + bounded concurrency over one cluster."""

    def __init__(
        self,
        cluster: GeoCluster,
        max_concurrent: int = 3,
        decision_bw: DecisionBw = None,
        shuffle_overhead: float = SHUFFLE_OVERHEAD,
        default_policy: PolicySpec = "tetrium",
        admission: AdmissionSpec = "fifo",
        default_slo: Optional[SLO] = None,
        admit_batch: int = DEFAULT_BATCH,
    ) -> None:
        if max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be ≥ 1: {max_concurrent}"
            )
        self.cluster = cluster
        self.max_concurrent = max_concurrent
        self.decision_bw = decision_bw
        self.shuffle_overhead = shuffle_overhead
        self.default_policy = default_policy
        #: Resolved admission policy (registered name / class / instance).
        self.admission: AdmissionPolicy = admission_policy(admission)
        #: SLO applied to submissions that do not carry their own.
        self.default_slo = default_slo
        self.reallocator = BatchedReallocator(self.admission, batch=admit_batch)
        self.queued: deque[JobTicket] = deque()
        self.running: list[JobTicket] = []
        self.completed: list[JobTicket] = []
        self.on_job_finished: Optional[Callable[[JobTicket], None]] = None
        #: Lifecycle hook for observability: called with
        #: ``("submit" | "admit" | "finish" | "preempt", ticket)`` at
        #: each transition.  Observation-only — the callback must not
        #: mutate scheduler state.
        self.on_event: Optional[Callable[[str, JobTicket], None]] = None
        #: Most jobs ever in flight at once (for concurrency assertions).
        self.peak_concurrency = 0
        self._first_submit: Optional[float] = None
        self._seq = 0

    @property
    def sim(self):
        """The shared simulator all jobs run on."""
        return self.cluster.network.sim

    def view(self) -> SchedulerView:
        """The read-only state snapshot admission policies consume."""
        return SchedulerView(
            now=self.sim.now,
            running=tuple(self.running),
            completed=tuple(self.completed),
        )

    # -- submission -----------------------------------------------------

    def submit(
        self,
        job: JobSpec,
        policy: PolicySpec = None,
        slo: Optional[SLO] = None,
    ) -> JobTicket:
        """Queue a job now; the admission policy decides when it starts.

        ``policy`` may be a :class:`PlacementPolicy` instance, a
        registered name (``"kimchi"``), a policy class, or ``None``
        for the scheduler's ``default_policy``.  ``slo`` attaches the
        job's promises (deadline / priority / fair-share weight);
        ``None`` falls back to the scheduler's ``default_slo``.
        """
        resolved = placement_policy(
            policy if policy is not None else self.default_policy
        )
        ticket = JobTicket(
            job,
            resolved,
            submitted_s=self.sim.now,
            slo=slo if slo is not None else self.default_slo,
            seq=self._seq,
            policy_pinned=policy is not None,
            enqueued_s=self.sim.now,
        )
        self._seq += 1
        if self._first_submit is None:
            self._first_submit = self.sim.now
        self.queued.append(ticket)
        self.reallocator.note_submit()
        if self.on_event is not None:
            self.on_event("submit", ticket)
        self._admit()
        return ticket

    def submit_at(
        self,
        delay_s: float,
        job: JobSpec,
        policy: PolicySpec = None,
        slo: Optional[SLO] = None,
    ) -> None:
        """Schedule a submission ``delay_s`` seconds from now."""
        self.sim.schedule(delay_s, lambda: self.submit(job, policy, slo))

    def submit_many(
        self,
        entries: list[tuple[float, JobSpec, PolicySpec, Optional[SLO]]],
    ) -> None:
        """Bulk-schedule ``(delay_s, job, policy, slo)`` submissions.

        One :meth:`~repro.sim.kernel.Simulator.schedule_many` heapify
        instead of a per-job ``schedule`` sift — the fast path for the
        big seeded mixes the service and the shard executor submit.
        Sequence assignment matches per-entry :meth:`submit_at` calls
        exactly, so traces stay byte-identical.
        """
        self.sim.schedule_many(
            (delay_s, self._submit_thunk(job, policy, slo))
            for delay_s, job, policy, slo in entries
        )

    def _submit_thunk(
        self, job: JobSpec, policy: PolicySpec, slo: Optional[SLO]
    ) -> Callable[[], None]:
        """A zero-argument deferred submit (bulk-scheduling payload)."""
        return lambda: self.submit(job, policy, slo)

    def _admit(self) -> None:
        while self.queued and len(self.running) < self.max_concurrent:
            # ``self.view`` is passed as a factory: the state snapshot
            # is only taken when the reallocator actually re-orders.
            ticket = self.reallocator.pop(self.queued, self.view)
            self._start(ticket)

    def _start(self, ticket: JobTicket) -> None:
        """Move one queued ticket into execution (resuming if paused)."""
        self.queued.remove(ticket)
        ticket.waited_s += self.sim.now - ticket.enqueued_s
        ticket.started_s = self.sim.now
        self.running.append(ticket)
        self.peak_concurrency = max(
            self.peak_concurrency, len(self.running)
        )
        ticket.run = JobRun(
            self.cluster,
            ticket.job,
            ticket.policy,
            decision_bw=self.decision_bw,
            shuffle_overhead=self.shuffle_overhead,
            on_finish=lambda result, t=ticket: self._finished(t, result),
            resume_from=ticket.checkpoint,
        )
        ticket.checkpoint = None
        if self.on_event is not None:
            self.on_event("admit", ticket)
        ticket.run.start()

    # -- preemption (control-plane surface) -----------------------------

    def preempt(
        self,
        victim: JobTicket,
        beneficiary: Optional[JobTicket] = None,
        migrate: bool = False,
    ) -> JobCheckpoint:
        """Pause ``victim`` mid-run and hand its slot to ``beneficiary``.

        The victim's run is checkpointed (completed stages survive, the
        interrupted phase is redone on resume) and the ticket goes back
        on the admission queue.  ``beneficiary`` — when given — is
        started *directly*, bypassing the admission order: the
        preemption policy already decided who the slot is for, and
        under FIFO the victim would otherwise win its own slot back
        immediately (it is the oldest queued ticket).  With
        ``migrate=True`` the victim's placement policy is re-resolved
        from the scheduler's current ``default_policy`` before resume —
        the migration path a multi-backend re-plan steers.
        """
        if victim not in self.running:
            raise ValueError(f"ticket {victim.job.name!r} is not running")
        if beneficiary is not None and beneficiary not in self.queued:
            raise ValueError(
                f"ticket {beneficiary.job.name!r} is not queued"
            )
        checkpoint = victim.run.pause()
        victim.checkpoint = checkpoint
        victim.run = None
        victim.started_s = None
        victim.preemptions += 1
        victim.preempted_at = self.sim.now
        victim.enqueued_s = self.sim.now
        if migrate:
            victim.policy = placement_policy(self.default_policy)
        self.running.remove(victim)
        # Front of the queue, not the back: preemption means "pause A,
        # run B, resume A at the next free slot" — under FIFO a
        # back-queued victim would instead wait out every later
        # arrival, converting one near-certain hit into a miss.
        # Non-FIFO admission policies re-order the whole queue anyway.
        self.queued.appendleft(victim)
        # The cached admission order may still reference the victim as
        # admitted; force a re-ordering before the next policy pop.
        self.reallocator.invalidate()
        if self.on_event is not None:
            self.on_event("preempt", victim)
        if beneficiary is not None:
            self._start(beneficiary)
        else:
            self._admit()
        return checkpoint

    def set_max_concurrent(self, value: int) -> None:
        """Re-target the concurrency bound (the autoscaler's knob).

        Raising it admits queued jobs immediately; lowering it drains
        naturally — running jobs are never preempted by a scale-down,
        the bound just stops back-filling freed slots.
        """
        if value < 1:
            raise ValueError(f"max_concurrent must be ≥ 1: {value}")
        self.max_concurrent = value
        self._admit()

    def set_admission(self, spec: object) -> None:
        """Hot-swap the admission policy (the policy switcher's knob).

        Running jobs are untouched; only the order of future admissions
        changes.  The batched reallocator keeps its amortization
        counters but is re-pointed at the new policy and invalidated,
        so the next pop re-orders the queue under the new policy rather
        than draining a cache built by the old one.
        """
        self.admission = admission_policy(spec)
        self.reallocator.policy = self.admission
        self.reallocator.invalidate()

    def _finished(self, ticket: JobTicket, result: JobResult) -> None:
        ticket.result = result
        ticket.finished_s = self.sim.now
        self.running.remove(ticket)
        self.completed.append(ticket)
        self.reallocator.note_finish()
        if self.on_event is not None:
            self.on_event("finish", ticket)
        if self.on_job_finished is not None:
            self.on_job_finished(ticket)
        self._admit()

    # -- statistics -----------------------------------------------------

    #: Class-level alias of the module :data:`ZERO_STATS` (kept for
    #: callers that spelled it ``JobScheduler.ZERO_STATS``).
    ZERO_STATS: dict[str, float] = ZERO_STATS

    def stats(self) -> dict[str, float]:
        """Aggregate completion statistics for the run so far.

        Safe at any point in a run — see :func:`aggregate_stats` for
        the key set and the empty-case semantics.

        Control-plane activity is visible here only indirectly (a
        preempted-and-resumed job's ``wait_s`` includes its re-queue
        time); the explicit counters — ``preemptions``, ``migrations``,
        ``throttle_moves``, ``concurrency_high_water`` — live on
        :class:`~repro.runtime.service.ServiceSummary`, which merges
        this dict with the
        :class:`~repro.runtime.control.plane.ControlPlane` stats.
        """
        return aggregate_stats(self.completed, self._first_submit)
