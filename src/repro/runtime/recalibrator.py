"""Continuous capacity recalibration: a background gauger for links.

Between drift re-plans the service trusts whatever bandwidth matrix
the predictor produced at plan time.  Production WAN tooling does not:
the CloudGenix controller re-derives each circuit's usable capacity
from the p95 of *observed* throughput over a trailing window, on an
interval, clamped by configured ceilings.  This module is that loop
for the WANify runtime.

:class:`CapacityRecalibrator` sits between the shared
:class:`~repro.runtime.telemetry.TelemetryStore` and the service's
published capacity matrix.  Each tick it:

1. reads, for every link of the baseline matrix, the configured
   percentile of observed throughput over the trailing window — with
   idle/outage zero samples **counted** (``active_only=False``), so a
   window dominated by outage ticks drags the estimate down instead of
   replaying the stale pre-outage capacity;
2. skips links with fewer than ``min_samples`` *active* samples in the
   window (a link that carried nothing says nothing — idle links stay
   at baseline rather than being crushed toward the floor);
3. clamps the move to ``±max_step_fraction`` of the baseline per tick
   (one corrupt window cannot teleport a link), then clamps the result
   into ``[floor_fraction, ceiling_fraction] × baseline`` and below the
   topology link ceiling when one is known;
4. publishes the updated matrix through ``on_publish`` — the service
   installs it as its decision matrix, which is what the scheduler's
   placement scoring, the control plane's slack estimator, and the
   :class:`~repro.runtime.control.governor.BandwidthGovernor`'s cap
   clamp all read.

The recalibrator is deliberately *not* a re-planner: it never tears
down deployments or re-runs the pipeline.  It keeps the numbers the
planner's artifacts are judged against honest, and leaves structural
reactions to the drift detector (which keeps its own baseline and is
rebased on every re-plan, exactly as before).

Operational escape hatch: :meth:`CapacityRecalibrator.stall` skips the
next N ticks — the knob an operator (or the chaos harness) uses to
freeze recalibration during a maintenance window without tearing the
process down.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.matrix import BandwidthMatrix
from repro.runtime.telemetry import TelemetryStore

__all__ = ["CapacityRecalibrator"]

#: Moves smaller than this (Mbps) are not counted as adjustments —
#: percentile jitter on a healthy link is not a recalibration.
ADJUST_EPSILON_MBPS = 1e-6


class CapacityRecalibrator:
    """Periodically re-derive per-link usable capacity from telemetry.

    ``baseline`` is the matrix the current plan was built on: floors,
    ceilings, and step sizes are all fractions of it, so the guards are
    stable even as the published matrix wanders.  ``link_ceiling``
    (when given) maps ``(src, dst)`` to the topology's hard capacity —
    the recalibrated value never exceeds it regardless of the
    configured ceiling fraction.
    """

    def __init__(
        self,
        store: TelemetryStore,
        baseline: BandwidthMatrix,
        *,
        percentile: float = 95.0,
        window_s: float = 240.0,
        floor_fraction: float = 0.2,
        ceiling_fraction: float = 1.2,
        max_step_fraction: float = 0.25,
        min_samples: int = 3,
        link_ceiling: Optional[Callable[[str, str], float]] = None,
        on_publish: Optional[Callable[[BandwidthMatrix], None]] = None,
    ) -> None:
        if not 0.0 <= percentile <= 100.0:
            raise ValueError(f"percentile must be in [0, 100]: {percentile}")
        if window_s <= 0.0:
            raise ValueError(f"window_s must be positive: {window_s}")
        if not 0.0 < floor_fraction <= ceiling_fraction:
            raise ValueError(
                "need 0 < floor_fraction <= ceiling_fraction: "
                f"{floor_fraction} / {ceiling_fraction}"
            )
        if max_step_fraction <= 0.0:
            raise ValueError(
                f"max_step_fraction must be positive: {max_step_fraction}"
            )
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1: {min_samples}")
        self.store = store
        self.percentile = percentile
        self.window_s = window_s
        self.floor_fraction = floor_fraction
        self.ceiling_fraction = ceiling_fraction
        self.max_step_fraction = max_step_fraction
        self.min_samples = min_samples
        self.link_ceiling = link_ceiling
        self.on_publish = on_publish
        self.baseline = baseline.copy()
        self.current = baseline.copy()
        #: Recalibration ticks actually executed (stalled ticks are
        #: counted separately).
        self.ticks = 0
        #: Ticks swallowed by :meth:`stall`.
        self.stalled_ticks = 0
        #: Cumulative links moved across all ticks.
        self.adjustments = 0
        #: Links moved by the most recent executed tick.
        self.last_adjusted = 0
        #: Simulator time of the most recent executed tick.
        self.last_tick_s: Optional[float] = None
        self._stall_remaining = 0

    # -- guard arithmetic ----------------------------------------------

    def floor_mbps(self, src: str, dst: str) -> float:
        """Lower guard for one link."""
        return self.floor_fraction * self.baseline.get(src, dst)

    def ceiling_mbps(self, src: str, dst: str) -> float:
        """Upper guard for one link (never above the topology)."""
        ceiling = self.ceiling_fraction * self.baseline.get(src, dst)
        if self.link_ceiling is not None:
            hard = self.link_ceiling(src, dst)
            if hard > 0.0:
                ceiling = min(ceiling, hard)
        return max(ceiling, self.floor_mbps(src, dst))

    def within_bounds(self) -> list[tuple[str, str, float]]:
        """Links whose current value violates the guards (empty = OK).

        The chaos harness's executable invariant: whatever faults were
        injected, every published capacity sits in
        ``[floor, ceiling]`` (ceiling already topology-clamped).
        """
        violations = []
        for src, dst in self.current.pairs():
            value = self.current.get(src, dst)
            low = self.floor_mbps(src, dst) - ADJUST_EPSILON_MBPS
            high = self.ceiling_mbps(src, dst) + ADJUST_EPSILON_MBPS
            if not low <= value <= high:
                violations.append((src, dst, value))
        return violations

    # -- control -------------------------------------------------------

    def stall(self, ticks: int = 1) -> None:
        """Skip the next ``ticks`` recalibration ticks."""
        if ticks < 0:
            raise ValueError(f"ticks must be >= 0: {ticks}")
        self._stall_remaining += ticks

    def rebase(self, baseline: BandwidthMatrix) -> None:
        """Adopt a fresh plan's matrix as baseline *and* current.

        Called after a drift re-plan, mirroring
        :meth:`~repro.runtime.drift.DriftDetector.rebase`: the new
        plan's numbers are the new truth, and recalibration restarts
        its walk from them.
        """
        self.baseline = baseline.copy()
        self.current = baseline.copy()

    def matrix(self) -> BandwidthMatrix:
        """A copy of the current recalibrated matrix."""
        return self.current.copy()

    # -- the tick ------------------------------------------------------

    def tick(self, now: float) -> Optional[BandwidthMatrix]:
        """One recalibration pass; returns the published matrix.

        Returns ``None`` (and publishes nothing) when stalled.  Links
        without enough active telemetry keep their current value.
        """
        if self._stall_remaining > 0:
            self._stall_remaining -= 1
            self.stalled_ticks += 1
            return None
        self.ticks += 1
        self.last_tick_s = now
        moved = 0
        for src, dst in self.current.pairs():
            estimate = self.store.estimate(src, dst, window_s=self.window_s)
            if estimate.samples < self.min_samples:
                continue
            observed = self.store.capacity_mbps(
                src,
                dst,
                self.percentile,
                window_s=self.window_s,
                active_only=False,
            )
            previous = self.current.get(src, dst)
            step = self.max_step_fraction * self.baseline.get(src, dst)
            target = min(max(observed, previous - step), previous + step)
            target = min(
                max(target, self.floor_mbps(src, dst)),
                self.ceiling_mbps(src, dst),
            )
            if abs(target - previous) > ADJUST_EPSILON_MBPS:
                self.current.set(src, dst, target)
                moved += 1
        self.last_adjusted = moved
        self.adjustments += moved
        published = self.matrix()
        if self.on_publish is not None:
            self.on_publish(published)
        return published
