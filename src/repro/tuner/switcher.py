"""Online policy switching: bandit arms over the registered policies.

The offline half of the tuner (:mod:`repro.tuner.search`) finds the
cheapest *static* configuration meeting an SLO target.  This module is
the online half: a :class:`PolicySwitcher` the control plane ticks,
which treats (scheduler, preemption[, gauger]) policy bundles as bandit
**arms**, scores them from live scheduler SLO stats per network
*regime* (classified from the telemetry warehouse's rollups), and
hot-swaps the service's policies between control ticks when a
different arm looks better — the Bala-Join move of re-deciding the
strategy mid-run once gauged bandwidth diverges from what the current
policy assumed.

Everything is seeded and deterministic: epsilon-greedy draws from a
``random.Random(config.seed)``, UCB1 breaks ties by arm index, and the
regime classifier reads memoized rollups.  With ``tuner = "none"``
(the default) no switcher is ever constructed, so paper-reproduction
runs are untouched.

The switcher mirrors the bandwidth governor's strict apply/release
ledger: the baseline arm (whatever the config named) is captured at
construction, every swap is counted and observable through the
``on_switch`` hook, and :meth:`PolicySwitcher.close` restores the
baseline bundle so teardown never leaves a switched-in policy active.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.pipeline.registry import (
    build_stage,
    preemption_policy,
    register_tuner_policy,
    tuner_registry,
)

if TYPE_CHECKING:
    from repro.pipeline.config import ServiceConfig
    from repro.runtime.control.plane import ControlPlane
    from repro.runtime.observability.warehouse import MetricsLog
    from repro.runtime.scheduler import JobScheduler

#: Lookback window (s) for regime classification — matches the
#: warehouse's five 1-minute rollup buckets.
REGIME_WINDOW_S = 300.0

#: Mean p95/capacity utilization above which the network regime is
#: ``hot`` (links congested) rather than ``calm``.
HOT_UTILIZATION = 0.5


@dataclass(frozen=True)
class PolicyArm:
    """One pullable policy bundle: admission + preemption (+ gauger).

    ``gauger`` is optional because the gauger lives in the pipeline,
    not the scheduler; it is applied only when the host wires an
    ``apply_gauger`` callback into the switcher (the default arms
    leave it ``None``, keeping switches a pure control-plane affair).
    """

    name: str
    scheduler: str
    preemption: str
    gauger: Optional[str] = None


@dataclass
class ArmStats:
    """Per-(regime, arm) bandit bookkeeping.

    ``pulls`` counts selections, ``rewarded`` counts observation
    windows that actually decided SLOs (windows with no completions
    teach nothing and are skipped), ``total_reward`` accumulates the
    windowed attainment ratio.
    """

    pulls: int = 0
    rewarded: int = 0
    total_reward: float = 0.0

    @property
    def mean_reward(self) -> float:
        """Average attainment over rewarded windows (0 when unseen)."""
        return self.total_reward / self.rewarded if self.rewarded else 0.0


def default_arms(config: "ServiceConfig") -> tuple[PolicyArm, ...]:
    """The stock arm set: the configured baseline plus SLO-leaning arms.

    Arm 0 is always the baseline bundle (exactly what the config named)
    so the bandit can fall back to configured behavior, and so restore
    on :meth:`PolicySwitcher.close` is just "apply arm 0".
    """
    arms = [PolicyArm("baseline", config.scheduler, config.preemption)]
    if config.scheduler != "deadline-edf":
        arms.append(PolicyArm("edf", "deadline-edf", config.preemption))
    if config.preemption != "urgent-slo":
        arms.append(PolicyArm("edf+preempt", "deadline-edf", "urgent-slo"))
    return tuple(arms)


# ----------------------------------------------------------------------
# Bandit policies (the tuner registry's entries)
# ----------------------------------------------------------------------


@register_tuner_policy("none")
class NoSwitch:
    """Sentinel: observation-only, the service builds no switcher.

    Registered so ``tuner = "none"`` validates through the same
    registry as real bandits (mirroring ``preemption = "none"``).
    """

    name = "none"

    def choose(self, arms: Sequence[PolicyArm], stats: Sequence[ArmStats]) -> int:
        """Always the baseline arm."""
        return 0


@register_tuner_policy("epsilon-greedy")
class EpsilonGreedy:
    """Explore with probability ε, else exploit the best mean reward.

    Seeded from ``config.seed`` so a given run always draws the same
    exploration sequence; cold arms are explored first, in arm order,
    before any random draw happens.
    """

    name = "epsilon-greedy"

    def __init__(
        self,
        config: Optional["ServiceConfig"] = None,
        epsilon: Optional[float] = None,
        seed: Optional[int] = None,
    ) -> None:
        if epsilon is None:
            epsilon = config.tuner_epsilon if config is not None else 0.2
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1]: {epsilon}")
        self.epsilon = epsilon
        if seed is None:
            seed = config.seed if config is not None else 0
        self._rng = random.Random(seed)

    def choose(self, arms: Sequence[PolicyArm], stats: Sequence[ArmStats]) -> int:
        """Cold arms in order, then ε-explore / exploit best mean."""
        for index, entry in enumerate(stats):
            if entry.pulls == 0:
                return index
        if self._rng.random() < self.epsilon:
            return self._rng.randrange(len(arms))
        return max(range(len(arms)), key=lambda i: (stats[i].mean_reward, -i))


@register_tuner_policy("ucb1")
class Ucb1:
    """UCB1: mean reward plus a ``c·sqrt(ln N / n)`` exploration bonus.

    Fully deterministic — cold arms are pulled in arm order, and score
    ties resolve to the lowest arm index (the baseline wins ties).
    """

    name = "ucb1"

    def __init__(self, c: float = math.sqrt(2.0)) -> None:
        self.c = c

    def choose(self, arms: Sequence[PolicyArm], stats: Sequence[ArmStats]) -> int:
        """Cold arms in order, then the highest upper confidence bound."""
        for index, entry in enumerate(stats):
            if entry.pulls == 0:
                return index
        total = sum(entry.pulls for entry in stats)
        bonus = self.c * math.sqrt(math.log(total))

        def score(index: int) -> tuple[float, int]:
            entry = stats[index]
            return (entry.mean_reward + bonus / math.sqrt(entry.pulls), -index)

        return max(range(len(arms)), key=score)


# ----------------------------------------------------------------------
# The switcher
# ----------------------------------------------------------------------


@dataclass
class SwitchEvent:
    """One applied swap, for the ledger and the event trace."""

    time: float
    action: str  # "switch" | "restore"
    previous: PolicyArm
    arm: PolicyArm
    regime: str = "global"


class PolicySwitcher:
    """Bandit-driven hot-swapping of scheduler + preemption policies.

    Constructed by the control plane when ``config.tuner != "none"``
    and ticked at the tail of every control tick (after autoscale /
    preempt / govern, so it scores the world those actuators made).
    One tick does two things:

    1. **observe** — credit the attainment of SLOs decided since the
       last tick to the arm that was live, under the regime the
       warehouse's recent rollups describe;
    2. **decide** — outside the ``switch_cooldown_s`` window, ask the
       bandit for an arm and apply it if it differs from the live one
       (admission swap via ``JobScheduler.set_admission``, preemption
       swap on the plane's ``policy`` slot).
    """

    def __init__(
        self,
        scheduler: "JobScheduler",
        plane: "ControlPlane",
        config: "ServiceConfig",
        warehouse: Optional[Callable[[], Optional["MetricsLog"]]] = None,
        arms: Optional[Sequence[PolicyArm]] = None,
        apply_gauger: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.scheduler = scheduler
        self.plane = plane
        self.config = config
        self.bandit = build_stage(tuner_registry, config.tuner, config=config)
        if isinstance(self.bandit, NoSwitch):
            raise ValueError('tuner "none" is observation-only; build no switcher')
        self.arms: tuple[PolicyArm, ...] = (
            tuple(arms) if arms is not None else default_arms(config)
        )
        if not self.arms:
            raise ValueError("a PolicySwitcher needs at least one arm")
        self.warehouse = warehouse
        self.apply_gauger = apply_gauger
        self.cooldown_s = config.switch_cooldown_s
        #: Arm 0 is the configured bundle; close() restores it.
        self.baseline = self.arms[0]
        self.active = self.arms[0]
        self.stats: dict[tuple[str, str], ArmStats] = {}
        self.switches = 0
        self.restores = 0
        self.events: list[SwitchEvent] = []
        #: Swap observer — the observability hub's hook.
        self.on_switch: Optional[Callable[[SwitchEvent], None]] = None
        self._last_decision_at: Optional[float] = None
        self._last_attained = 0.0
        self._last_missed = 0.0
        self._closed = False

    # -- scoring ---------------------------------------------------------

    def _stats_for(self, regime: str, arm: PolicyArm) -> ArmStats:
        return self.stats.setdefault((regime, arm.name), ArmStats())

    def _aggregate(self, arm: PolicyArm) -> ArmStats:
        """The arm's stats summed over every regime seen so far."""
        total = ArmStats()
        for (_, name), entry in self.stats.items():
            if name == arm.name:
                total.pulls += entry.pulls
                total.rewarded += entry.rewarded
                total.total_reward += entry.total_reward
        return total

    def _selection_stats(self, regime: str) -> list[ArmStats]:
        """What the bandit sees: regime stats, global stats as a prior.

        A run only makes a handful of decisions, and regimes shift
        between them; an arm the bandit has never pulled *in this
        regime* borrows its cross-regime aggregate instead of
        presenting as brand-new, so a regime change doesn't reset
        exploration back to arm 0 every time.
        """
        views: list[ArmStats] = []
        for arm in self.arms:
            entry = self._stats_for(regime, arm)
            views.append(entry if entry.pulls else self._aggregate(arm))
        return views

    def regime(self, now: float) -> str:
        """Classify the current operating regime, deterministically.

        Network side from the warehouse's recent 1-minute link rollups
        (``hot`` when mean p95 utilization crosses
        :data:`HOT_UTILIZATION`, else ``calm``; ``calm`` again when no
        warehouse or no recent rows exist), crossed with queue pressure
        (``backlogged`` when more jobs wait than can run).  Four
        regimes keep the per-regime sample counts high enough for the
        bandit to converge within a run.
        """
        net = "calm"
        log = self.warehouse() if self.warehouse is not None else None
        if log is not None and log.size:
            recent = [
                row
                for row in log.rollup("1m", by="link")
                if row.bucket_start >= now - REGIME_WINDOW_S
                and row.capacity_mbps > 0.0
            ]
            if recent:
                utilization = sum(
                    row.p95_mbps / row.capacity_mbps for row in recent
                ) / len(recent)
                if utilization >= HOT_UTILIZATION:
                    net = "hot"
        load = (
            "backlogged"
            if len(self.scheduler.queued) > self.scheduler.max_concurrent
            else "steady"
        )
        return f"{net}-{load}"

    def _observe(self, regime: str) -> None:
        """Credit the live arm with the window's attainment ratio."""
        stats = self.scheduler.stats()
        attained, missed = stats["slo_attained"], stats["slo_missed"]
        delta_attained = attained - self._last_attained
        delta_missed = missed - self._last_missed
        self._last_attained, self._last_missed = attained, missed
        decided = delta_attained + delta_missed
        if decided <= 0:
            return
        entry = self._stats_for(regime, self.active)
        entry.rewarded += 1
        entry.total_reward += delta_attained / decided

    # -- actuation -------------------------------------------------------

    def tick(self, now: float) -> None:
        """One control-tick step: observe, then (maybe) switch."""
        if self._closed:
            return
        regime = self.regime(now)
        self._observe(regime)
        if (
            self._last_decision_at is not None
            and now - self._last_decision_at < self.cooldown_s
        ):
            return
        self._last_decision_at = now
        index = self.bandit.choose(self.arms, self._selection_stats(regime))
        arm = self.arms[index]
        self._stats_for(regime, arm).pulls += 1
        if arm != self.active:
            self._apply(now, arm, action="switch", regime=regime)

    def _apply(
        self, now: float, arm: PolicyArm, action: str, regime: str = "global"
    ) -> None:
        self.scheduler.set_admission(arm.scheduler)
        self.plane.policy = preemption_policy(arm.preemption)
        if arm.gauger is not None and self.apply_gauger is not None:
            self.apply_gauger(arm.gauger)
        previous, self.active = self.active, arm
        if action == "switch":
            self.switches += 1
        else:
            self.restores += 1
        event = SwitchEvent(
            time=now, action=action, previous=previous, arm=arm, regime=regime
        )
        self.events.append(event)
        if self.on_switch is not None:
            self.on_switch(event)

    def close(self) -> None:
        """Restore the baseline bundle — the apply/restore ledger's exit.

        Idempotent, and a no-op when the baseline arm is already live;
        after it, ``switches == restores + (active is baseline)`` never
        leaves a switched-in policy active past teardown.
        """
        if self._closed:
            return
        self._closed = True
        if self.active != self.baseline:
            self._apply(self.scheduler.sim.now, self.baseline, action="restore")

    # -- reporting -------------------------------------------------------

    def arm_stats(self) -> dict[str, dict[str, float]]:
        """Per-arm totals aggregated over regimes (pulled arms only)."""
        out: dict[str, dict[str, float]] = {}
        for (_, arm_name), entry in sorted(self.stats.items()):
            if entry.pulls == 0 and entry.rewarded == 0:
                continue
            bucket = out.setdefault(
                arm_name, {"pulls": 0.0, "rewarded": 0.0, "total_reward": 0.0}
            )
            bucket["pulls"] += entry.pulls
            bucket["rewarded"] += entry.rewarded
            bucket["total_reward"] += entry.total_reward
        for bucket in out.values():
            bucket["mean_reward"] = (
                bucket["total_reward"] / bucket["rewarded"]
                if bucket["rewarded"]
                else 0.0
            )
        return out

    @property
    def arms_explored(self) -> int:
        """Distinct arms pulled at least once (any regime)."""
        return len({name for (_, name), s in self.stats.items() if s.pulls})
