"""Offline config search: successive halving over the sweep matrix.

``wanify tune`` answers the operator question the sweep report leaves
open: *which* cell should I actually deploy?  The search space is the
same registry-driven matrix a ``[sweep]`` table describes (control ×
scheduler × gauger × planner …), the objective is **cheapest feasible**:

    minimize   probe_cost_usd + replan_cost_usd
    subject to slo_attainment ≥ target

A full cartesian product at production fidelity is exactly what the
sweep runner already does — and exactly what a tuner must avoid.  This
module layers successive-halving style pruning on top of the *same*
cell runner (:func:`repro.experiments.sweep.run_cell`): early rungs run
every surviving cell with a reduced job count (a cheap fidelity proxy),
rank them by the objective, and keep only the top ``1/eta`` fraction;
the final rung re-runs the survivors at the file's full ``(jobs,
repeats)`` fidelity, so the winner's reported metrics are *identical*
to what the unpruned sweep path would have measured for that cell.

A tune file is a sweep file plus one more table::

    [sweep]
    schedulers = ["fifo", "deadline-edf"]
    preemptions = ["none", "urgent-slo"]
    jobs = 8
    repeats = 2

    [tune]
    target = 0.9        # SLO-attainment floor (default: base tune_target)
    eta = 2             # survivor fraction per rung (keep 1/eta)
    min_jobs = 1        # fidelity floor for the earliest rung

Entry points: :func:`run_tune` in code, ``wanify tune --config
file.toml`` on the command line (``--dry-run`` prints the rung plan
without running anything).  The report is ``tune.json`` + ``tune.md``
plus ``winner.toml`` — an ordinary layered-config file loadable by
``wanify serve`` and ``wanify sweep`` alike.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence, Union

from repro.pipeline.config import ServiceConfig, load_config_file
from repro.experiments.sweep import (
    CellResult,
    SweepError,
    SweepSpec,
    _init_worker,
    _pretrain,
    _run_cell_in_worker,
    load_sweep,
    run_cell,
)

#: Objective metrics every ranking reads (subset of METRIC_COLUMNS).
COST_METRICS = ("probe_cost_usd", "replan_cost_usd")


class TuneError(SweepError):
    """A tune file failed validation (bad target, bad eta…)."""


@dataclass(frozen=True)
class TuneSpec:
    """A validated tuning run: the sweep matrix plus the objective."""

    sweep: SweepSpec
    #: Feasibility floor: cells below this SLO attainment only win when
    #: nothing reaches it (the report flags the winner infeasible).
    target: float = 0.9
    #: Survivor fraction per rung — each rung keeps ``ceil(n / eta)``.
    eta: int = 2
    #: Fidelity floor: the earliest rung never runs fewer jobs.
    min_jobs: int = 1


def load_tune(
    path: Union[str, Path],
    environ: Optional[Mapping[str, str]] = None,
    overrides: Optional[Mapping[str, Any]] = None,
) -> TuneSpec:
    """Parse and validate a tune file (a sweep file + ``[tune]``)."""
    sweep = load_sweep(path, environ=environ, overrides=overrides)
    data = load_config_file(path)
    section = data.get("tune", {})
    if not isinstance(section, dict):
        raise TuneError(f"[tune] in {path} must be a table")
    known = {"target", "eta", "min_jobs"}
    unknown = sorted(set(section) - known)
    if unknown:
        raise TuneError(f"unknown [tune] keys {unknown}; known: {sorted(known)}")
    target = float(section.get("target", sweep.base.tune_target))
    if not 0.0 < target <= 1.0:
        raise TuneError(f"[tune] target must be in (0, 1]: {target}")
    eta = int(section.get("eta", 2))
    if eta < 2:
        raise TuneError(f"[tune] eta must be ≥ 2: {eta}")
    min_jobs = int(section.get("min_jobs", 1))
    if not 1 <= min_jobs <= sweep.jobs:
        raise TuneError(
            f"[tune] min_jobs must be in [1, jobs={sweep.jobs}]: {min_jobs}"
        )
    return TuneSpec(sweep=sweep, target=target, eta=eta, min_jobs=min_jobs)


def rung_plan(spec: TuneSpec) -> list[tuple[int, int]]:
    """The ``(jobs, repeats)`` fidelity ladder, cheapest rung first.

    ``ceil(log_eta(cells))`` reduced-fidelity rungs (enough to halve an
    ``n``-cell matrix down to one survivor) followed by one rung at the
    sweep's full ``(jobs, repeats)``.  A single-cell matrix gets just
    the full-fidelity rung — there is nothing to prune.
    """
    cells = len(spec.sweep.cells)
    rounds = math.ceil(math.log(cells) / math.log(spec.eta)) if cells > 1 else 0
    plan = [
        (
            max(spec.min_jobs, spec.sweep.jobs // spec.eta ** (rounds - r)),
            1,
        )
        for r in range(rounds)
    ]
    plan.append((spec.sweep.jobs, spec.sweep.repeats))
    return plan


def _rank_key(
    row: CellResult, target: float, index: int
) -> tuple[int, float, float, int]:
    """Cheapest-feasible ordering: feasibility, cost, attainment, matrix order."""
    attainment = row.metrics["slo_attainment"]
    cost = sum(row.metrics[name] for name in COST_METRICS)
    return (0 if attainment >= target else 1, cost, -attainment, index)


@dataclass
class RungResult:
    """One rung's ledger: what ran at which fidelity, what got pruned."""

    rung: int
    jobs: int
    repeats: int
    evaluated: tuple[str, ...]
    pruned: tuple[str, ...]

    def to_json(self) -> dict[str, Any]:
        """JSON-ready flat representation."""
        return {
            "rung": self.rung,
            "jobs": self.jobs,
            "repeats": self.repeats,
            "evaluated": list(self.evaluated),
            "pruned": list(self.pruned),
        }


@dataclass
class TuneResult:
    """Everything a finished tuning search produced."""

    spec: TuneSpec
    rungs: list[RungResult] = field(default_factory=list)
    winner: Optional[CellResult] = None
    #: Matrix index of the winning cell.
    winner_index: int = 0
    #: Cell-runs actually executed across all rungs (the pruning win:
    #: compare against ``len(cells) × len(rungs)`` unpruned).
    cells_executed: int = 0
    #: Whether the winner actually meets the SLO target (``False``
    #: means *nothing* did and the winner is merely least-bad).
    feasible: bool = False

    def best_config(self) -> ServiceConfig:
        """The winning cell applied to the base config."""
        assert self.winner is not None
        return dataclasses.replace(self.spec.sweep.base, **self.winner.cell)

    def to_json(self) -> dict[str, Any]:
        """The report's JSON body (winner row + rung ledger)."""
        assert self.winner is not None
        cost = sum(self.winner.metrics[name] for name in COST_METRICS)
        return {
            "shape": self.spec.sweep.shape,
            "target": self.spec.target,
            "eta": self.spec.eta,
            "cells": len(self.spec.sweep.cells),
            "cells_executed": self.cells_executed,
            "feasible": self.feasible,
            "winner": self.winner.to_json(),
            "winner_objective_usd": cost,
            "rungs": [rung.to_json() for rung in self.rungs],
        }


def _run_cells(
    rung_spec: SweepSpec,
    cells: Sequence[Mapping[str, Any]],
    trained: dict,
    workers: int,
) -> list[CellResult]:
    """Run ``cells`` under ``rung_spec``, rows in submission order.

    The same two paths as :func:`repro.experiments.sweep.run_sweep`:
    sequential shares the parent's trained-forest cache; parallel ships
    the pre-trained forests to a pool and collects results in
    submission order so reports stay deterministic however the workers
    interleave.
    """
    if workers == 1 or len(cells) <= 1:
        return [run_cell(rung_spec, cell, trained) for cell in cells]
    import concurrent.futures

    with concurrent.futures.ProcessPoolExecutor(
        max_workers=min(workers, len(cells)),
        initializer=_init_worker,
        initargs=(trained,),
    ) as pool:
        futures = [
            pool.submit(_run_cell_in_worker, rung_spec, dict(cell))
            for cell in cells
        ]
        return [future.result() for future in futures]


def run_tune(spec: TuneSpec, progress=None, workers: int = 1) -> TuneResult:
    """Successive halving over the matrix; returns the cheapest feasible cell.

    ``progress`` is an optional ``callable(done, total, label)``
    matching the sweep runner's hook; labels carry a ``rung r/N``
    prefix.  Pruned cells are never executed again — each rung runs
    only its survivors, and a survivor whose fidelity did not change
    between rungs reuses the row it already measured.
    """
    if workers < 1:
        raise TuneError(f"workers must be ≥ 1: {workers}")
    sweep = spec.sweep
    cells = sweep.cells
    if not cells:
        raise TuneError("the tune matrix is empty")
    plan = rung_plan(spec)
    trained = _pretrain(sweep) if workers > 1 else {}
    survivors = list(range(len(cells)))
    result = TuneResult(spec)
    #: (jobs, repeats, cell index) → measured row, so an unchanged
    #: fidelity never re-runs a survivor.
    measured: dict[tuple[int, int, int], CellResult] = {}
    done = 0
    expected = len(cells)
    total = 0
    for _ in plan:
        total += expected
        expected = max(1, math.ceil(expected / spec.eta))
    for rung_index, (jobs_r, repeats_r) in enumerate(plan):
        rung_spec = dataclasses.replace(sweep, jobs=jobs_r, repeats=repeats_r)
        to_run = [
            i for i in survivors if (jobs_r, repeats_r, i) not in measured
        ]
        if progress is not None:
            for i in to_run:
                progress(
                    done,
                    total,
                    f"rung {rung_index + 1}/{len(plan)} "
                    f"(jobs={jobs_r}): {sweep.label(cells[i])}",
                )
                done += 1
        rows = _run_cells(
            rung_spec, [cells[i] for i in to_run], trained, workers
        )
        for i, row in zip(to_run, rows):
            measured[(jobs_r, repeats_r, i)] = row
        result.cells_executed += len(to_run)
        ranked = sorted(
            survivors,
            key=lambda i: _rank_key(
                measured[(jobs_r, repeats_r, i)], spec.target, i
            ),
        )
        if rung_index < len(plan) - 1:
            keep = max(1, math.ceil(len(survivors) / spec.eta))
            kept = sorted(ranked[:keep])
        else:
            kept = [ranked[0]]
        pruned = [i for i in survivors if i not in kept]
        result.rungs.append(
            RungResult(
                rung=rung_index,
                jobs=jobs_r,
                repeats=repeats_r,
                evaluated=tuple(sweep.label(cells[i]) for i in survivors),
                pruned=tuple(sweep.label(cells[i]) for i in pruned),
            )
        )
        survivors = kept
    winner_index = survivors[0]
    final_jobs, final_repeats = plan[-1]
    result.winner_index = winner_index
    result.winner = measured[(final_jobs, final_repeats, winner_index)]
    result.feasible = result.winner.metrics["slo_attainment"] >= spec.target
    return result


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------


def _toml_value(value: Any) -> str:
    """One config value as a TOML literal."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, (tuple, list)):
        return "[" + ", ".join(_toml_value(v) for v in value) + "]"
    return json.dumps(str(value))


def winning_toml(result: TuneResult) -> str:
    """The winner as a flat layered-config TOML.

    Every non-``None`` :class:`ServiceConfig` field is spelled out
    (not just the swept ones), so the file is self-contained: loading
    it through ``serve``, ``sweep``, or ``tune`` reproduces the
    winning cell exactly, independent of default drift.
    """
    config = result.best_config()
    lines = [
        "# Winning configuration from `wanify tune`",
        f"# objective: probe+replan cost with slo_attainment >= {result.spec.target}",
        f"# winning cell: {result.winner.label}"
        if result.winner is not None
        else "#",
    ]
    for field_ in dataclasses.fields(type(config)):
        value = getattr(config, field_.name)
        if value is None:
            continue
        lines.append(f"{field_.name} = {_toml_value(value)}")
    lines.append("")
    return "\n".join(lines)


def render_tune_markdown(result: TuneResult) -> str:
    """The tuning report as GitHub-flavored markdown."""
    spec = result.spec
    winner = result.winner
    assert winner is not None
    cost = sum(winner.metrics[name] for name in COST_METRICS)
    unpruned = len(spec.sweep.cells)
    lines = [
        f"# Tuning report ({spec.sweep.shape} matrix, "
        f"{result.cells_executed} cell-runs)",
        "",
        f"objective: minimize probe+replan cost subject to "
        f"`slo_attainment ≥ {spec.target}` (eta = {spec.eta}); "
        f"full sweep would run {unpruned} cells at full fidelity.",
        "",
        "## Rungs",
        "",
        "| rung | jobs | repeats | evaluated | pruned |",
        "|---|---|---|---|---|",
    ]
    for rung in result.rungs:
        lines.append(
            f"| {rung.rung + 1} | {rung.jobs} | {rung.repeats} "
            f"| {len(rung.evaluated)} | "
            f"{', '.join(rung.pruned) if rung.pruned else '—'} |"
        )
    verdict = (
        "meets the target"
        if result.feasible
        else "**misses the target** (no cell reached it; least-bad shown)"
    )
    lines += [
        "",
        "## Winner",
        "",
        f"`{winner.label}` — {verdict}:",
        "",
        f"- slo_attainment: {winner.metrics['slo_attainment']:.3f}",
        f"- probe+replan cost: ${cost:.4f}",
        f"- mean JCT: {winner.metrics['mean_jct_s']:.1f} s",
        "",
        "The full configuration is written alongside this report as "
        "`winner.toml`, loadable by `wanify serve` and `wanify sweep`.",
        "",
    ]
    return "\n".join(lines)


def write_tune_report(
    result: TuneResult, output: Union[str, Path]
) -> tuple[Path, Path, Path]:
    """Write ``tune.json``, ``tune.md`` and ``winner.toml`` under ``output``."""
    directory = Path(output)
    directory.mkdir(parents=True, exist_ok=True)
    json_path = directory / "tune.json"
    md_path = directory / "tune.md"
    toml_path = directory / "winner.toml"
    json_path.write_text(json.dumps(result.to_json(), indent=2) + "\n")
    md_path.write_text(render_tune_markdown(result))
    toml_path.write_text(winning_toml(result))
    return json_path, md_path, toml_path
