"""Adaptive tuning: offline config search + online policy switching.

Two halves of one loop.  :mod:`repro.tuner.search` is the **offline**
half — ``wanify tune`` runs successive halving over the sweep matrix
to find the cheapest configuration meeting an SLO-attainment target.
:mod:`repro.tuner.switcher` is the **online** half — a bandit-driven
:class:`~repro.tuner.switcher.PolicySwitcher` the control plane ticks,
hot-swapping scheduler/preemption policies mid-run as the gauged
network regime shifts.  Both are off by default (``tuner = "none"``,
``tune`` only runs when invoked), so paper-reproduction runs never see
either.
"""

from repro.tuner.search import (
    COST_METRICS,
    RungResult,
    TuneError,
    TuneResult,
    TuneSpec,
    load_tune,
    render_tune_markdown,
    rung_plan,
    run_tune,
    winning_toml,
    write_tune_report,
)
from repro.tuner.switcher import (
    ArmStats,
    EpsilonGreedy,
    NoSwitch,
    PolicyArm,
    PolicySwitcher,
    SwitchEvent,
    Ucb1,
    default_arms,
)

__all__ = [
    "ArmStats",
    "COST_METRICS",
    "EpsilonGreedy",
    "NoSwitch",
    "PolicyArm",
    "PolicySwitcher",
    "RungResult",
    "SwitchEvent",
    "TuneError",
    "TuneResult",
    "TuneSpec",
    "Ucb1",
    "default_arms",
    "load_tune",
    "render_tune_markdown",
    "rung_plan",
    "run_tune",
    "winning_toml",
    "write_tune_report",
]
