"""iPerf-like bandwidth measurement with cost accounting.

The paper distinguishes four ways of obtaining a BW matrix (§2.2):

* **static-independent** — one DC pair probed at a time on an otherwise
  idle mesh (what Tetrium/Kimchi/Iridium do).  Cheap-ish, but ignores
  the contention that exists during real shuffles;
* **static-simultaneous** — every pair probed at once.  This *is* the
  runtime contention pattern, but probing a full mesh for ≥20 s is the
  expensive option Table 2 prices;
* **snapshot** — a 1-second simultaneous probe.  Noisy but cheap; the
  input feature of WANify's predictor;
* **stable runtime** — a ≥20-second simultaneous average ("empirical
  results on AWS suggest that stable runtime BWs are achieved with at
  least 20 seconds of monitoring", §2.2).  The predictor's target.

Every mode runs actual probe flows through the flow-level simulator, so
contended modes inherit exactly the same RTT-biased sharing the
analytics traffic experiences.  Each report carries the Table 3 feature
set and an Eq. 1-style cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cloud.pricing import PriceBook
from repro.net import tcp
from repro.net.dynamics import FluctuationModel, StaticModel
from repro.net.matrix import BandwidthMatrix
from repro.net.simulator import NetworkSimulator
from repro.net.topology import Topology

#: Probe VM used by the paper's Bandwidth Analyzer (Table 2, §2.2).
PROBE_VM = "t3.nano"

#: Stable-runtime window (§2.2).
STABLE_WINDOW_S = 20.0

#: Snapshot window (§2.2).
SNAPSHOT_WINDOW_S = 1.0


@dataclass
class MeasurementCost:
    """What a measurement cost: instance time plus probe traffic."""

    instance_seconds: float = 0.0
    gigabytes: float = 0.0
    dollars: float = 0.0


@dataclass
class MeasurementReport:
    """A measured BW matrix plus per-pair auxiliary features.

    ``memory_util``, ``cpu_load`` and ``retransmissions`` are the
    Table 3 features (``Md``, ``Ci``, ``Nr``); keys are DC keys for the
    first two and ordered pairs for the last.
    """

    mode: str
    matrix: BandwidthMatrix
    window_s: float
    time: float
    cost: MeasurementCost = field(default_factory=MeasurementCost)
    memory_util: dict[str, float] = field(default_factory=dict)
    cpu_load: dict[str, float] = field(default_factory=dict)
    retransmissions: dict[tuple[str, str], float] = field(default_factory=dict)


def _probe_cost(
    topology: Topology,
    instance_seconds: float,
    total_mbits: float,
    prices: PriceBook,
) -> MeasurementCost:
    gigabytes = total_mbits / 8.0 / 1024.0
    dollars = (
        prices.compute_cost(PROBE_VM, instance_seconds)
        + prices.network_cost(gigabytes)
    )
    return MeasurementCost(instance_seconds, gigabytes, dollars)


def _aux_features(
    topology: Topology,
    network: NetworkSimulator,
    matrix: BandwidthMatrix,
    window_s: float,
    seed_time: float,
) -> tuple[dict[str, float], dict[str, float], dict[tuple[str, str], float]]:
    """Synthesize Md / Ci / Nr consistently with the probe activity.

    Receiver memory utilization grows with the number of incoming
    connections (each needs a buffer, §3.1 [17]); CPU load with the
    number of active probe flows; retransmission counts follow the
    loss-rate estimate of the TCP model times the delivered volume.
    """
    memory_util: dict[str, float] = {}
    cpu_load: dict[str, float] = {}
    retrans: dict[tuple[str, str], float] = {}
    rng = np.random.default_rng(int(seed_time * 1000) % (2**32))
    for dst in topology.keys:
        incoming = sum(
            network.connections(src, dst)
            for src in topology.keys
            if src != dst
        )
        base = 0.15 + 0.02 * incoming / max(1, topology.dc(dst).num_vms)
        memory_util[dst] = float(np.clip(base + rng.normal(0, 0.02), 0.05, 0.98))
    for src in topology.keys:
        flows = sum(1 for dst in topology.keys if dst != src)
        base = 0.10 + 0.05 * flows / max(1, topology.dc(src).num_vms)
        cpu_load[src] = float(np.clip(base + rng.normal(0, 0.03), 0.02, 1.0))
    for src, dst in matrix.pairs():
        rtt = topology.rtt_ms(src, dst)
        loss = topology.tcp.loss_rate_estimate(rtt)
        mbits = matrix.get(src, dst) * window_s
        packets = mbits * 1e6 / (1460 * 8)
        retrans[(src, dst)] = float(max(0.0, packets * loss))
    return memory_util, cpu_load, retrans


def _run_probe_mesh(
    topology: Topology,
    pairs: list[tuple[str, str]],
    window_s: float,
    fluctuation: FluctuationModel | StaticModel,
    at_time: float,
    connections: int | BandwidthMatrix = 1,
) -> tuple[BandwidthMatrix, NetworkSimulator]:
    """Run iPerf probes for ``pairs`` for ``window_s`` seconds."""
    network = NetworkSimulator(
        topology, fluctuation=fluctuation, time_offset=at_time
    )
    if isinstance(connections, BandwidthMatrix):
        network.set_connection_plan(connections)
    elif connections != 1:
        for src, dst in pairs:
            network.set_connections(src, dst, int(connections))
    probes = [
        network.start_transfer(src, dst, size_mbits=1e12, tag="iperf")
        for src, dst in pairs
    ]
    network.sim.run(until=network.sim.now + window_s)
    matrix = network.observed_bw_matrix()
    for probe in probes:
        network.cancel_transfer(probe)
    return matrix, network


def measure_independent(
    topology: Topology,
    fluctuation: FluctuationModel | StaticModel | None = None,
    at_time: float = 0.0,
    window_s: float = STABLE_WINDOW_S,
    prices: PriceBook | None = None,
) -> MeasurementReport:
    """Static-independent BWs: one pair at a time, single connection.

    This is the measurement existing GDA systems feed their optimizers.
    """
    fluctuation = fluctuation if fluctuation is not None else StaticModel()
    prices = prices or PriceBook()
    out = BandwidthMatrix.zeros(topology.keys)
    total_mbits = 0.0
    last_network = None
    for src in topology.keys:
        for dst in topology.keys:
            if src == dst:
                continue
            matrix, network = _run_probe_mesh(
                topology, [(src, dst)], window_s, fluctuation, at_time
            )
            out.set(src, dst, matrix.get(src, dst))
            total_mbits += matrix.get(src, dst) * window_s
            last_network = network
    # Each pair probe occupies the two endpoint VMs for the window; the
    # mesh is probed pair-by-pair (sequentially, as iPerf is run).
    n_pairs = topology.n * (topology.n - 1)
    instance_seconds = 2 * window_s * n_pairs
    cost = _probe_cost(topology, instance_seconds, total_mbits, prices)
    md, ci, nr = _aux_features(
        topology, last_network, out, window_s, at_time
    )
    return MeasurementReport(
        "independent", out, window_s, at_time, cost, md, ci, nr
    )


def measure_simultaneous(
    topology: Topology,
    fluctuation: FluctuationModel | StaticModel | None = None,
    at_time: float = 0.0,
    window_s: float = STABLE_WINDOW_S,
    connections: int | BandwidthMatrix = 1,
    prices: PriceBook | None = None,
) -> MeasurementReport:
    """All-pairs simultaneous BWs — the true runtime contention pattern."""
    fluctuation = fluctuation if fluctuation is not None else StaticModel()
    prices = prices or PriceBook()
    pairs = [
        (src, dst)
        for src in topology.keys
        for dst in topology.keys
        if src != dst
    ]
    matrix, network = _run_probe_mesh(
        topology, pairs, window_s, fluctuation, at_time, connections
    )
    total_mbits = float(matrix.off_diagonal().sum()) * window_s
    instance_seconds = topology.n * window_s
    cost = _probe_cost(topology, instance_seconds, total_mbits, prices)
    md, ci, nr = _aux_features(topology, network, matrix, window_s, at_time)
    return MeasurementReport(
        "simultaneous", matrix, window_s, at_time, cost, md, ci, nr
    )


def snapshot(
    topology: Topology,
    fluctuation: FluctuationModel | StaticModel | None = None,
    at_time: float = 0.0,
    prices: PriceBook | None = None,
) -> MeasurementReport:
    """A 1-second all-pairs probe: cheap, noisy, the predictor's input."""
    fluctuation = fluctuation if fluctuation is not None else StaticModel()
    report = measure_simultaneous(
        topology, fluctuation, at_time, SNAPSHOT_WINDOW_S, 1, prices
    )
    jittered = report.matrix.copy()
    for src, dst in jittered.pairs():
        i, j = topology.index(src), topology.index(dst)
        jitter = fluctuation.snapshot_jitter(i, j, at_time, SNAPSHOT_WINDOW_S)
        jittered.set(src, dst, jittered.get(src, dst) * jitter)
    return MeasurementReport(
        "snapshot",
        jittered,
        SNAPSHOT_WINDOW_S,
        at_time,
        report.cost,
        report.memory_util,
        report.cpu_load,
        report.retransmissions,
    )


def stable_runtime(
    topology: Topology,
    fluctuation: FluctuationModel | StaticModel | None = None,
    at_time: float = 0.0,
    connections: int | BandwidthMatrix = 1,
    prices: PriceBook | None = None,
) -> MeasurementReport:
    """The ≥20-second simultaneous average — the predictor's target."""
    fluctuation = fluctuation if fluctuation is not None else StaticModel()
    report = measure_simultaneous(
        topology, fluctuation, at_time, STABLE_WINDOW_S, connections, prices
    )
    report.mode = "stable_runtime"
    return report
