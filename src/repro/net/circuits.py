"""Multi-path circuit primitives: primary/secondary pairs, failover,
flapping, and minimum-capacity path policy.

Production WANs rarely hang a site pair off one circuit: there is a
primary path (MPLS, a leased line) and a secondary (broadband, LTE),
and controller policy moves traffic between them — immediately on hard
failure (with a degraded-quality window while tunnels re-form), or
preemptively when the primary's measured capacity falls below a
configured minimum.  The WANify simulator models link capacity as a
multiplicative *quality factor* over topology bandwidth, so this
module expresses all of that as pure factor arithmetic:

* :class:`Circuit` — one path's steady quality;
* :class:`CircuitPair` — primary + secondary + the failover transition
  (:meth:`CircuitPair.quality_at` maps time-since-failure to the pair's
  delivered quality and which path carries traffic);
* :func:`flap_quality` — a deterministic square wave for chronically
  unstable circuits (the classic "flapping link");
* :func:`select_path` — the minimum-capacity path policy: primary while
  it clears the threshold, secondary otherwise.

Everything here is a pure function of its arguments — no clocks, no
randomness — which is what lets the scenario layer
(:mod:`repro.runtime.scenarios`) wrap these into seeded, replayable,
``+``-composable scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Circuit",
    "CircuitPair",
    "flap_quality",
    "select_path",
]

#: Path labels returned by :meth:`CircuitPair.quality_at` and
#: :func:`select_path`.
PRIMARY = "primary"
FAILOVER = "failover"
SECONDARY = "secondary"


def _check_quality(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1]: {value}")


@dataclass(frozen=True)
class Circuit:
    """One path between a site pair, as a steady quality factor.

    ``quality`` scales the topology bandwidth the path delivers when
    healthy: ``1.0`` is the full provisioned rate (a primary circuit),
    ``0.6`` a thinner backup (broadband behind an MPLS line).
    """

    quality: float = 1.0

    def __post_init__(self) -> None:
        _check_quality("quality", self.quality)


@dataclass(frozen=True)
class CircuitPair:
    """A primary/secondary circuit pair with a failover transition.

    When the primary fails, traffic does not jump cleanly to the
    secondary: for ``failover_s`` seconds the pair delivers only
    ``degraded_quality`` (tunnel re-establishment, routing
    convergence, retransmit storms), then settles at the secondary's
    steady quality.
    """

    primary: Circuit = Circuit(1.0)
    secondary: Circuit = Circuit(0.6)
    degraded_quality: float = 0.15
    failover_s: float = 120.0

    def __post_init__(self) -> None:
        _check_quality("degraded_quality", self.degraded_quality)
        if self.failover_s < 0.0:
            raise ValueError(f"failover_s must be >= 0: {self.failover_s}")

    def quality_at(self, since_failure_s: float) -> tuple[float, str]:
        """Delivered quality and carrying path, by time since failure.

        Negative ``since_failure_s`` means the primary has not failed
        (yet): the pair delivers the primary's quality.
        """
        if since_failure_s < 0.0:
            return self.primary.quality, PRIMARY
        if since_failure_s < self.failover_s:
            return self.degraded_quality, FAILOVER
        return self.secondary.quality, SECONDARY


def flap_quality(
    t: float,
    period_s: float,
    duty: float,
    up_quality: float = 1.0,
    down_quality: float = 0.1,
    phase_s: float = 0.0,
) -> float:
    """Square-wave quality of a chronically flapping circuit.

    Each ``period_s`` the circuit spends ``duty`` of the period *down*
    (at ``down_quality``) and the rest up.  ``phase_s`` offsets the
    wave so a population of flapping links need not beat in unison.
    Pure in its arguments — the scenario layer derives ``phase_s`` from
    a per-link hash to keep replays exact.
    """
    if period_s <= 0.0:
        raise ValueError(f"period_s must be positive: {period_s}")
    if not 0.0 <= duty <= 1.0:
        raise ValueError(f"duty must be in [0, 1]: {duty}")
    position = (t + phase_s) % period_s
    return down_quality if position < duty * period_s else up_quality


def select_path(
    primary_capacity_fraction: float, min_capacity_fraction: float
) -> str:
    """The minimum-capacity path policy.

    Keep the primary while its measured capacity fraction clears the
    configured minimum; otherwise move to the secondary.  (This is the
    CloudGenix-style "path falls below minimum down/up capacity" rule
    reduced to factor space.)
    """
    if primary_capacity_fraction >= min_capacity_fraction:
        return PRIMARY
    return SECONDARY
