"""WAN substrate: topology, contention model, simulator, measurement.

This package is the stand-in for the paper's AWS testbed.  It models the
four phenomena WANify exploits:

1. single-connection TCP throughput falls sharply with RTT (Fig. 1:
   1700 Mbps US East–US West vs 121 Mbps US East–AP SE),
2. under contention, bandwidth sharing is biased toward short-RTT flows
   (nearby DCs "occupy most of the available network", §2.2),
3. parallel connections raise a pair's throughput roughly linearly up to
   a congestion knee (9 connections lift the weakest link to ~1 Gbps;
   no gain beyond 8 on the strongest link),
4. link bandwidth fluctuates over time (σ ≈ 184 Mbps in the paper's
   collected datasets).
"""

from repro.net.circuits import Circuit, CircuitPair, flap_quality, select_path
from repro.net.matrix import BandwidthMatrix
from repro.net.topology import DataCenter, Topology
from repro.net.simulator import NetworkSimulator, Transfer
from repro.net.measurement import (
    MeasurementReport,
    measure_independent,
    measure_simultaneous,
    snapshot,
    stable_runtime,
)
from repro.net.monitor import WanMonitor
from repro.net.traffic_control import TrafficController

__all__ = [
    "BandwidthMatrix",
    "Circuit",
    "CircuitPair",
    "DataCenter",
    "MeasurementReport",
    "NetworkSimulator",
    "Topology",
    "TrafficController",
    "Transfer",
    "WanMonitor",
    "flap_quality",
    "measure_independent",
    "measure_simultaneous",
    "select_path",
    "snapshot",
    "stable_runtime",
]
