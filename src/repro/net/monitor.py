"""ifTop-like per-VM runtime bandwidth monitor.

Each WANify local agent runs "lightweight node-level runtime monitoring
(e.g., ifTop)" (§3.2.2).  :class:`WanMonitor` samples a DC's outgoing
rates on a fixed interval and keeps a short history, from which agents
read the latest per-destination bandwidth and the experiment harness
computes standard deviations (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.net.simulator import NetworkSimulator
from repro.sim.kernel import Process

#: Signature monitors publish with: ``(dc, time, rates_mbps)``.  A
#: :class:`repro.runtime.telemetry.TelemetryStore` bound method
#: (``store.record``) satisfies it directly.
SampleSink = Callable[[str, float, dict[str, float]], None]


@dataclass
class MonitorSample:
    """One sampling instant: time plus rate per destination DC."""

    time: float
    rates_mbps: dict[str, float] = field(default_factory=dict)


class WanMonitor:
    """Samples outgoing rates of one DC on a fixed interval.

    The monitor also accumulates per-destination transferred volume
    between reads, which the local optimizer uses for its "< 1 MB —
    skip" rule (§3.2.2).
    """

    def __init__(
        self,
        network: NetworkSimulator,
        dc: str,
        interval_s: float = 5.0,
        history: int = 512,
        on_sample: Optional[SampleSink] = None,
    ) -> None:
        self.network = network
        self.dc = dc
        self.interval_s = interval_s
        self.history_limit = history
        self.samples: list[MonitorSample] = []
        #: Optional publication hook — the runtime service passes the
        #: shared telemetry store's ``record`` here, so every agent's
        #: monitor feeds one cluster-wide series.
        self.on_sample = on_sample
        self._volume_anchor: dict[str, float] = {}
        self._process = Process(
            network.sim, interval_s, self._sample, start_delay=interval_s
        )

    def _sample(self, now: float) -> None:
        rates = {
            dst: self.network.current_rate(self.dc, dst)
            for dst in self.network.topology.keys
            if dst != self.dc
        }
        self.samples.append(MonitorSample(now, rates))
        if len(self.samples) > self.history_limit:
            del self.samples[: len(self.samples) - self.history_limit]
        if self.on_sample is not None:
            self.on_sample(self.dc, now, dict(rates))

    def latest_rate(self, dst: str) -> float:
        """Most recently sampled rate toward ``dst`` (Mbps), 0 if none."""
        if not self.samples:
            return 0.0
        return self.samples[-1].rates_mbps.get(dst, 0.0)

    def latest(self) -> dict[str, float]:
        """Most recent full sample (empty dict before the first tick)."""
        return dict(self.samples[-1].rates_mbps) if self.samples else {}

    def rate_percentile(self, dst: str, p: float) -> float:
        """Percentile of this monitor's own sampled rates toward ``dst``.

        Only *active* samples count (a rate of 0 means the link was
        idle, which says nothing about its capacity); returns 0 when the
        link never carried traffic.  The cluster-wide view with sliding
        windows and EWMA lives in
        :class:`repro.runtime.telemetry.TelemetryStore` — this is the
        single-node shortcut.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100]: {p}")
        rates = [
            s.rates_mbps.get(dst, 0.0)
            for s in self.samples
            if s.rates_mbps.get(dst, 0.0) > 0.0
        ]
        if not rates:
            return 0.0
        return float(np.percentile(rates, p))

    def window_volume_mb(self, dst: str) -> float:
        """Megabytes sent to ``dst`` since the last call for that pair.

        Feeds the §3.2.2 rule that pairs moving < 1 MB skip AIMD mode
        toggles.
        """
        stats = self.network.pair_statistics().get((self.dc, dst))
        total_mb = (stats.mbits / 8.0) if stats else 0.0
        anchor = self._volume_anchor.get(dst, 0.0)
        self._volume_anchor[dst] = total_mb
        return max(0.0, total_mb - anchor)

    def stop(self) -> None:
        """Stop sampling."""
        self._process.stop()
