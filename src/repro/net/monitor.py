"""ifTop-like per-VM runtime bandwidth monitor.

Each WANify local agent runs "lightweight node-level runtime monitoring
(e.g., ifTop)" (§3.2.2).  :class:`WanMonitor` samples a DC's outgoing
rates on a fixed interval and keeps a short history, from which agents
read the latest per-destination bandwidth and the experiment harness
computes standard deviations (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.simulator import NetworkSimulator
from repro.sim.kernel import Process


@dataclass
class MonitorSample:
    """One sampling instant: time plus rate per destination DC."""

    time: float
    rates_mbps: dict[str, float] = field(default_factory=dict)


class WanMonitor:
    """Samples outgoing rates of one DC on a fixed interval.

    The monitor also accumulates per-destination transferred volume
    between reads, which the local optimizer uses for its "< 1 MB —
    skip" rule (§3.2.2).
    """

    def __init__(
        self,
        network: NetworkSimulator,
        dc: str,
        interval_s: float = 5.0,
        history: int = 512,
    ) -> None:
        self.network = network
        self.dc = dc
        self.interval_s = interval_s
        self.history_limit = history
        self.samples: list[MonitorSample] = []
        self._volume_anchor: dict[str, float] = {}
        self._process = Process(
            network.sim, interval_s, self._sample, start_delay=interval_s
        )

    def _sample(self, now: float) -> None:
        rates = {
            dst: self.network.current_rate(self.dc, dst)
            for dst in self.network.topology.keys
            if dst != self.dc
        }
        self.samples.append(MonitorSample(now, rates))
        if len(self.samples) > self.history_limit:
            del self.samples[: len(self.samples) - self.history_limit]

    def latest_rate(self, dst: str) -> float:
        """Most recently sampled rate toward ``dst`` (Mbps), 0 if none."""
        if not self.samples:
            return 0.0
        return self.samples[-1].rates_mbps.get(dst, 0.0)

    def latest(self) -> dict[str, float]:
        """Most recent full sample (empty dict before the first tick)."""
        return dict(self.samples[-1].rates_mbps) if self.samples else {}

    def window_volume_mb(self, dst: str) -> float:
        """Megabytes sent to ``dst`` since the last call for that pair.

        Feeds the §3.2.2 rule that pairs moving < 1 MB skip AIMD mode
        toggles.
        """
        stats = self.network.pair_statistics().get((self.dc, dst))
        total_mb = (stats.mbits / 8.0) if stats else 0.0
        anchor = self._volume_anchor.get(dst, 0.0)
        self._volume_anchor[dst] = total_mb
        return max(0.0, total_mb - anchor)

    def stop(self) -> None:
        """Stop sampling."""
        self._process.stop()
