"""Vectorized batch advancement of concurrent transfers.

The scalar :class:`~repro.net.simulator.NetworkSimulator` hot path
touches every active transfer from Python on every simulator step:
progress accrual, rate assignment, next-completion ETA, and finished
scanning are each an interpreted loop over the transfer objects.  With
thousands of concurrent transfers per pair that is quadratic end to
end — every completion event re-walks the whole population four times.

This module is the batched alternative, selected by
``ServiceConfig.kernel = "vectorized"`` (``NetworkSimulator(...,
kernel="vectorized")``).  Transfers multiplexed on one pair all share
the pair's allocated rate *equally*, so a whole bucket advances as one
numpy vector: progress is ``transferred = minimum(size, transferred +
share·dt)``, the next completion is ``min(size - transferred) /
share``, and finished transfers fall out of one boolean mask.  The
per-element arithmetic is exactly the scalar path's (same operations,
same order), so a vectorized run reproduces scalar per-transfer
completion times — the parity contract
``tests/net/test_batch_parity.py`` enforces at 1e-6.

Progressive-filling rate allocation has an array-wise twin too
(:func:`allocate_batch`), used by the vectorized simulator in place of
:func:`repro.net.sharing.allocate`.

Two fallbacks keep the kernel safe to enable anywhere:

* numpy is imported lazily through :func:`load_numpy`; when it is
  absent the simulator emits one warning, records
  ``kernel_fallback=True``, and runs the scalar path;
* buckets at or below :data:`SMALL_BUCKET` transfers keep plain
  per-object arithmetic — array overhead only pays for itself on
  crowded pairs, and the small-bucket path leaves the transfer objects
  authoritative exactly like the scalar kernel.

While a bucket is array-backed its transfer objects' ``rate_mbps`` /
``transferred_mbits`` fields go stale by design; the simulator calls
:meth:`VectorKernel.sync_objects` before handing transfers to
observers (the bandwidth governor reads per-transfer rates off
:meth:`~repro.net.simulator.NetworkSimulator.active_transfers`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable

if TYPE_CHECKING:
    from repro.net.sharing import PairFlow
    from repro.net.simulator import Transfer

__all__ = [
    "SMALL_BUCKET",
    "VectorKernel",
    "allocate_batch",
    "load_numpy",
]

#: Buckets at or below this many transfers stay on per-object
#: arithmetic — numpy array overhead only pays off beyond it.
SMALL_BUCKET = 2

#: Remaining-payload slop below which a transfer counts as finished
#: (mirrors the simulator's completion scan).
FINISH_EPS = 1e-6

_EPS = 1e-9


def load_numpy():
    """The numpy module, or ``None`` when the import fails.

    Deliberately lazy (a function, not a module-level import): the
    vectorized kernel must degrade to the scalar path — with a single
    warning, not a crash — in environments without numpy, and the
    fallback test hides numpy via ``sys.modules`` patching, which only
    intercepts *new* imports.
    """
    try:
        import numpy
    except ImportError:
        return None
    return numpy


def allocate_batch(
    flows: list["PairFlow"],
    egress_caps: list[float],
    ingress_caps: list[float],
    np=None,
) -> list[float]:
    """Array-wise weighted progressive filling.

    Same fixed point as :func:`repro.net.sharing.allocate` — raise a
    water level, freeze flows at their caps or behind saturated NICs —
    with the per-iteration bookkeeping done on numpy arrays
    (``bincount`` aggregates the per-resource weights and gains).
    Falls back to the scalar implementation when numpy is unavailable.
    """
    if np is None:
        np = load_numpy()
    if np is None:
        from repro.net.sharing import allocate

        return allocate(flows, egress_caps, ingress_caps)
    n_flows = len(flows)
    if n_flows == 0:
        return []
    src = np.array([flow.src for flow in flows], dtype=np.intp)
    dst = np.array([flow.dst for flow in flows], dtype=np.intp)
    weight = np.array([flow.weight for flow in flows], dtype=float)
    cap = np.array([flow.cap for flow in flows], dtype=float)
    rates = np.zeros(n_flows)
    frozen = cap <= _EPS
    remaining_egress = np.array(egress_caps, dtype=float)
    remaining_ingress = np.array(ingress_caps, dtype=float)
    n_egress = len(egress_caps)
    n_ingress = len(ingress_caps)

    while True:
        active = ~frozen
        if not active.any():
            break
        active_weight = np.where(active, weight, 0.0)
        egress_weight = np.bincount(
            src, weights=active_weight, minlength=n_egress
        )
        ingress_weight = np.bincount(
            dst, weights=active_weight, minlength=n_ingress
        )

        # Largest permissible water-level increment.
        delta = float(((cap - rates)[active] / weight[active]).min())
        used = egress_weight > 0
        if used.any():
            delta = min(
                delta,
                float((remaining_egress[used] / egress_weight[used]).min()),
            )
        used = ingress_weight > 0
        if used.any():
            delta = min(
                delta,
                float(
                    (remaining_ingress[used] / ingress_weight[used]).min()
                ),
            )
        if delta == float("inf"):
            break
        delta = max(delta, 0.0)

        gain = np.where(active, weight * delta, 0.0)
        rates += gain
        remaining_egress -= np.bincount(src, weights=gain, minlength=n_egress)
        remaining_ingress -= np.bincount(
            dst, weights=gain, minlength=n_ingress
        )

        # Freeze flows at their caps and flows through saturated NICs.
        at_cap = active & (rates >= cap - _EPS)
        frozen |= at_cap
        still_active = ~frozen
        saturated = still_active & (
            (remaining_egress[src] <= _EPS)
            | (remaining_ingress[dst] <= _EPS)
        )
        frozen |= saturated
        if not (at_cap.any() or saturated.any()):
            # Numerical guard: nothing froze despite a finite delta.
            break

    return [float(rate) for rate in np.clip(rates, 0.0, cap)]


class _Bucket:
    """One pair's (or the LAN's) transfers advancing at a shared rate.

    Invariant: ``arrays`` exist exactly when the population exceeds
    :data:`SMALL_BUCKET`; while they exist, the arrays — not the
    transfer objects — are authoritative for progress.

    ``fresh`` counts trailing members admitted since the last
    :meth:`set_share`.  The scalar kernel leaves a new transfer at
    ``rate_mbps = 0`` until the next reallocation assigns shares, so
    the catch-up progress inside that reallocation must not advance it
    — fresh members are excluded from progress, aggregate rate, and
    completion ETA until shares land.
    """

    __slots__ = ("np", "transfers", "share", "fresh", "size", "transferred")

    def __init__(self, np) -> None:
        self.np = np
        self.transfers: list["Transfer"] = []
        #: Per-transfer rate (every member moves at the same share).
        self.share = 0.0
        #: Trailing members not yet covered by ``share``.
        self.fresh = 0
        self.size = None
        self.transferred = None

    def __len__(self) -> int:
        return len(self.transfers)

    @property
    def vectorized(self) -> bool:
        """Whether the bucket is currently array-backed."""
        return self.size is not None

    def _build_arrays(self) -> None:
        np = self.np
        self.size = np.array(
            [t.size_mbits for t in self.transfers], dtype=float
        )
        self.transferred = np.array(
            [t.transferred_mbits for t in self.transfers], dtype=float
        )

    def _drop_arrays(self) -> None:
        self.sync_objects()
        self.size = None
        self.transferred = None

    def add(self, transfer: "Transfer") -> None:
        """Admit one transfer (object state is current at this point)."""
        self.transfers.append(transfer)
        self.fresh += 1
        if self.vectorized:
            np = self.np
            self.size = np.append(self.size, transfer.size_mbits)
            self.transferred = np.append(
                self.transferred, transfer.transferred_mbits
            )
        elif len(self.transfers) > SMALL_BUCKET:
            self._build_arrays()

    def remove(self, transfer: "Transfer") -> None:
        """Evict one transfer, writing its progress back to the object."""
        index = next(
            (
                i
                for i, candidate in enumerate(self.transfers)
                if candidate is transfer
            ),
            None,
        )
        if index is None:
            return
        was_fresh = index >= len(self.transfers) - self.fresh
        del self.transfers[index]
        if was_fresh:
            self.fresh -= 1
        if not self.vectorized:
            return
        transfer.transferred_mbits = float(self.transferred[index])
        if not was_fresh:
            transfer.rate_mbps = self.share
        np = self.np
        self.size = np.delete(self.size, index)
        self.transferred = np.delete(self.transferred, index)
        if len(self.transfers) <= SMALL_BUCKET:
            self._drop_arrays()

    def set_share(self, share: float) -> None:
        """Install the per-transfer rate for the current allocation."""
        self.share = share
        self.fresh = 0
        if not self.vectorized:
            for transfer in self.transfers:
                transfer.rate_mbps = share

    def rate_total(self) -> float:
        """Aggregate instantaneous rate of the bucket (Mbps)."""
        if not self.vectorized:
            return sum(t.rate_mbps for t in self.transfers)
        return self.share * (len(self.transfers) - self.fresh)

    def progress(self, dt: float) -> None:
        """Advance every rate-carrying member by ``dt`` seconds."""
        if self.vectorized:
            np = self.np
            limit = len(self.transfers) - self.fresh
            np.minimum(
                self.size[:limit],
                self.transferred[:limit] + self.share * dt,
                out=self.transferred[:limit],
            )
        else:
            for transfer in self.transfers:
                transfer.transferred_mbits = min(
                    transfer.size_mbits,
                    transfer.transferred_mbits + transfer.rate_mbps * dt,
                )

    def min_eta(self) -> float:
        """Seconds until the bucket's next completion (inf when idle)."""
        if not self.vectorized:
            eta = float("inf")
            for transfer in self.transfers:
                if transfer.rate_mbps > 0:
                    eta = min(
                        eta, transfer.remaining_mbits / transfer.rate_mbps
                    )
            return eta
        limit = len(self.transfers) - self.fresh
        if self.share <= 0 or limit <= 0:
            return float("inf")
        remaining = float(
            (self.size[:limit] - self.transferred[:limit]).min()
        )
        return remaining / self.share

    def finished(self) -> list["Transfer"]:
        """Members whose remaining payload is within the finish slop."""
        if self.vectorized:
            mask = (self.size - self.transferred) <= FINISH_EPS
            indices = self.np.nonzero(mask)[0]
            if indices.size == 0:
                return []
            transfers = self.transfers
            return [transfers[i] for i in indices]
        return [
            t
            for t in self.transfers
            if t.remaining_mbits <= FINISH_EPS
        ]

    def sync_objects(self) -> None:
        """Write array progress and rates back to the transfer objects."""
        if not self.vectorized:
            return
        limit = len(self.transfers) - self.fresh
        for index, transfer in enumerate(self.transfers):
            transfer.transferred_mbits = float(self.transferred[index])
            if index < limit:
                transfer.rate_mbps = self.share


class VectorKernel:
    """Array-backed advancement state for one simulator.

    Keyed by the simulator's bucket identity — an ordered ``(src,
    dst)`` pair, or :attr:`LAN` for intra-DC traffic.  The simulator
    routes its per-transfer hot loops here when built with
    ``kernel="vectorized"``.
    """

    #: Bucket key for intra-DC (LAN) transfers.
    LAN = "lan"

    def __init__(self, np) -> None:
        self.np = np
        self.buckets: dict[Hashable, _Bucket] = {}

    def add(self, key: Hashable, transfer: "Transfer") -> None:
        """Track a newly started transfer under ``key``."""
        bucket = self.buckets.get(key)
        if bucket is None:
            bucket = self.buckets[key] = _Bucket(self.np)
        bucket.add(transfer)

    def remove(self, key: Hashable, transfer: "Transfer") -> None:
        """Stop tracking a finished or cancelled transfer."""
        bucket = self.buckets.get(key)
        if bucket is None:
            return
        bucket.remove(transfer)
        if not bucket.transfers:
            del self.buckets[key]

    def set_share(self, key: Hashable, share: float) -> None:
        """Install one bucket's per-transfer rate."""
        bucket = self.buckets.get(key)
        if bucket is not None:
            bucket.set_share(share)

    def rate_total(self, key: Hashable) -> float:
        """Aggregate rate of one bucket (0.0 when absent)."""
        bucket = self.buckets.get(key)
        return bucket.rate_total() if bucket is not None else 0.0

    def progress(self, dt: float) -> None:
        """Advance every bucket by ``dt`` seconds."""
        for bucket in self.buckets.values():
            bucket.progress(dt)

    def advance(self, dt: float) -> list["Transfer"]:
        """Progress every bucket by ``dt`` and collect the finishers.

        One walk over the buckets instead of the progress-then-scan
        double pass: the completion event's hot path calls this so a
        same-instant batch of finishing transfers is found in the same
        visit that advanced it.  ``dt <= 0`` skips the (no-op)
        progress but still collects — a transfer can finish exactly at
        an instant another event already progressed to.
        """
        out: list["Transfer"] = []
        for bucket in self.buckets.values():
            if dt > 0:
                bucket.progress(dt)
            out.extend(bucket.finished())
        return out

    def min_eta(self) -> float:
        """Seconds until the next completion across all buckets."""
        eta = float("inf")
        for bucket in self.buckets.values():
            eta = min(eta, bucket.min_eta())
        return eta

    def finished(self) -> list["Transfer"]:
        """Every tracked transfer whose payload has fully arrived."""
        out: list["Transfer"] = []
        for bucket in self.buckets.values():
            out.extend(bucket.finished())
        return out

    def sync_objects(self) -> None:
        """Flush array state back to the transfer objects (observers)."""
        for bucket in self.buckets.values():
            bucket.sync_objects()
