"""Network profiles: VPC peering, public Internet, edge-cloud.

The paper's testbed connects DCs with VPC peering "as it provides better
performance than the public Internet" (§5.1, citing Skyplane [23]), and
§2.1 says WANify must "handle diverse private and public networks,
including edge-cloud and VPC".  A profile bundles the path-level TCP
constants (:class:`~repro.net.tcp.TcpModel`) with the weather-noise
scaling that distinguishes those environments:

=================  ====================================================
profile            characteristics
=================  ====================================================
``vpc-peering``    the calibrated default — provider backbone, low
                   loss, the Fig. 1 bandwidth numbers
``public-internet`` transit routes: longer paths, ~3× loss, lower
                   single-connection rates, noisier weather
``edge-cloud``     last-mile constrained: high base RTT, modest
                   single-connection ceiling, the noisiest weather
=================  ====================================================

Profiles change *where the bottlenecks are*, not what WANify does about
them — the same prediction/optimization pipeline runs on any profile
(exercised in ``tests/net/test_profiles.py`` and the profile ablation
bench).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.dynamics import FluctuationModel
from repro.net.tcp import TcpModel


@dataclass(frozen=True)
class NetworkProfile:
    """One WAN environment: TCP path constants plus weather scaling.

    ``sigma_scale`` multiplies the baseline fluctuation sigma — transit
    and last-mile paths see far more cross-traffic variance than a
    provider backbone.
    """

    key: str
    description: str
    tcp: TcpModel
    sigma_scale: float = 1.0

    def fluctuation(
        self,
        seed: int = 7,
        base_sigma: float = 0.13,
        diurnal_amplitude: float = 0.08,
    ) -> FluctuationModel:
        """A weather model with this profile's noise level.

        >>> PUBLIC_INTERNET.fluctuation(seed=1).sigma > VPC_PEERING.fluctuation(seed=1).sigma
        True
        """
        return FluctuationModel(
            seed=seed,
            sigma=base_sigma * self.sigma_scale,
            diurnal_amplitude=diurnal_amplitude * self.sigma_scale,
        )


#: The calibrated default (the paper's AWS VPC-peering testbed).
VPC_PEERING = NetworkProfile(
    key="vpc-peering",
    description="Cloud-provider backbone with VPC peering (the paper's "
    "testbed; Fig. 1 calibration).",
    tcp=TcpModel(),
)

#: Transit-routed public Internet: Skyplane [23] and the paper's §5.1
#: both note it underperforms peering.  Longer effective routes, ~3×
#: loss (halving the Mathis rate at equal RTT), noisier weather.
PUBLIC_INTERNET = NetworkProfile(
    key="public-internet",
    description="Transit-routed public Internet paths between clouds.",
    tcp=TcpModel(
        k_mbps=4.20e6 * 0.55,
        alpha=1.935,
        max_single_mbps=3000.0,
        rtt_base_ms=4.0,
        route_stretch=1.7,
        loss_scale=3.0,
    ),
    sigma_scale=1.8,
)

#: Edge-cloud: DCs behind metro/last-mile links.  High fixed RTT, a
#: modest per-connection ceiling, and the noisiest weather — the regime
#: where parallel connections help most but congest fastest.
EDGE_CLOUD = NetworkProfile(
    key="edge-cloud",
    description="Edge sites reaching cloud regions over metro/last-mile "
    "links.",
    tcp=TcpModel(
        k_mbps=4.20e6 * 0.35,
        alpha=1.935,
        max_single_mbps=1000.0,
        rtt_base_ms=8.0,
        route_stretch=1.6,
        loss_scale=4.0,
    ),
    sigma_scale=2.5,
)

_PROFILES = {
    p.key: p for p in (VPC_PEERING, PUBLIC_INTERNET, EDGE_CLOUD)
}


def network_profile(key: str) -> NetworkProfile:
    """Look up a profile by key.

    >>> network_profile("vpc-peering") is VPC_PEERING
    True
    """
    try:
        return _PROFILES[key]
    except KeyError:
        known = ", ".join(sorted(_PROFILES))
        raise KeyError(
            f"unknown network profile {key!r}; known: {known}"
        ) from None


def all_profiles() -> tuple[NetworkProfile, ...]:
    """All built-in profiles, VPC first."""
    return (VPC_PEERING, PUBLIC_INTERNET, EDGE_CLOUD)
