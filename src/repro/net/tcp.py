"""Per-connection TCP throughput and parallel-connection efficiency.

Two empirical facts from the paper anchor this model:

* single-connection BW between US East and US West is ~1700 Mbps while
  US East to AP SE (Singapore) is ~121 Mbps (Fig. 1) — a 14× spread for
  a ~3.9× RTT spread, i.e. throughput falls roughly as ``1/RTT²``.
  This matches the Mathis model ``MSS/(RTT·sqrt(p))`` when loss
  probability grows with path length (more hops → more loss);
* the weakest link reached ~1 Gbps with 9 connections (§1), i.e.
  "runtime BW grows linearly with the connections" (§3.2.1) until a
  congestion knee — "increasing link parallelism beyond 8 resulted in no
  improvement ... because of anticipated network congestion" (§2.2) and
  "increasing connections beyond this optimal threshold causes
  performance degradation" (§3.2.1).

The constants live on :class:`TcpModel` so different *network profiles*
(VPC peering, public Internet, edge-cloud — §2.1 says WANify must handle
all of them) can carry their own path characteristics; the module-level
functions delegate to the VPC-peering default that calibrates to the
paper's AWS numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Default knee: connections beyond this per pair stop helping.
DEFAULT_KNEE = 8

#: Per-VM total-connection knee: a VM juggling more active WAN streams
#: than this loses effective NIC throughput to congestion — the §2.2
#: observation that uniform parallelism (8 × 7 peers = 56 streams per
#: VM) "has little benefit as nearby DCs occupy most of each other's
#: available network capacity" and §5.3.1's finding that WANify-P
#: *increases* latency.
DEFAULT_VM_KNEE = 24

#: Mild degradation per connection beyond the knee (§3.2.1).
OVERSUBSCRIPTION_PENALTY = 0.03

#: Throughput lost per active stream beyond the per-VM knee.
VM_CONGESTION_PENALTY = 0.02

#: Floor on per-VM efficiency under extreme oversubscription.
VM_EFFICIENCY_FLOOR = 0.35


@dataclass(frozen=True)
class TcpModel:
    """Path-level TCP constants for one kind of WAN.

    ``k_mbps`` and ``alpha`` define the single-connection rate
    ``k_mbps / RTT^alpha`` (Mbps, RTT in ms); ``max_single_mbps`` caps
    ultra-short paths; ``rtt_base_ms`` and ``route_stretch`` turn
    great-circle distance into RTT; ``loss_scale`` multiplies the Mathis
    loss estimate (public-Internet paths drop more packets than peered
    VPC paths at the same RTT).
    """

    #: Calibration constant K in  rate = K / RTT^ALPHA  (Mbps, ms).
    #: The default is chosen so one connection at the US East–US West
    #: RTT (~56.6 ms) gives ~1700 Mbps and at the US East–AP SE RTT
    #: (~221.7 ms) gives ~121 Mbps.
    k_mbps: float = 4.20e6

    #: RTT exponent (see module docstring); solved from Fig. 1 endpoints.
    alpha: float = 1.935

    #: Ceiling so ultra-short intra-continental RTTs don't produce
    #: absurd single-connection rates; roughly a 10 GbE line rate.
    max_single_mbps: float = 4500.0

    #: Fixed serialization/queueing component of RTT (ms).
    rtt_base_ms: float = 2.0

    #: Real routes vs great-circle path length.
    route_stretch: float = 1.4

    #: Multiplier on the Mathis loss estimate.
    loss_scale: float = 1.0

    def per_connection_mbps(self, rtt_ms: float) -> float:
        """Steady-state throughput of one TCP connection at a given RTT.

        >>> TcpModel().per_connection_mbps(57) > TcpModel().per_connection_mbps(222)
        True
        """
        if rtt_ms <= 0:
            raise ValueError(f"RTT must be positive: {rtt_ms}")
        return min(self.k_mbps / rtt_ms**self.alpha, self.max_single_mbps)

    def aggregate_cap_mbps(
        self, rtt_ms: float, connections: int, knee: int = DEFAULT_KNEE
    ) -> float:
        """Upper bound on a DC pair's throughput with ``connections``
        streams (before NIC/path contention is applied)."""
        return self.per_connection_mbps(rtt_ms) * parallel_efficiency(
            connections, knee
        )

    def rtt_weight(
        self, rtt_ms: float, connections: int, knee: int = DEFAULT_KNEE
    ) -> float:
        """Contention weight of a pair's aggregate flow.

        When loss-limited TCP flows share a bottleneck, each flow's share
        is roughly proportional to its *uncontended* rate (Mathis: rate ∝
        1/(RTT·√p), and loss grows with path length — the same ~1/RTT²
        behaviour the Fig. 1 endpoints calibrate).  A pair with ``k``
        connections therefore competes with weight ``k_eff ×
        per_connection_rate``.

        This is what makes uniform parallelism useless for the weak
        links — multiplying every pair's weight by 8 leaves the shares
        unchanged, so the Fig. 2(b) minimum stays at the
        single-connection level — while heterogeneous counts (more
        streams on weak pairs, fewer on strong) genuinely rebalance the
        distribution (Fig. 2(c)).
        """
        return parallel_efficiency(connections, knee) * self.per_connection_mbps(
            rtt_ms
        )

    def rtt_ms_for_distance(self, distance_miles: float) -> float:
        """Round-trip time as an affine function of great-circle distance.

        Light in fibre covers ~123 miles/ms; the profile's
        ``route_stretch`` accounts for real routes being longer than
        great-circle, and ``rtt_base_ms`` for local serialization and
        queueing.
        """
        if distance_miles < 0:
            raise ValueError(f"negative distance: {distance_miles}")
        propagation_one_way_ms = distance_miles * self.route_stretch / 123.0
        return self.rtt_base_ms + 2.0 * propagation_one_way_ms

    def loss_rate_estimate(self, rtt_ms: float) -> float:
        """Rough packet-loss estimate implied by the throughput model.

        Exposed for the ``Nr`` (retransmissions) feature of Table 3: the
        snapshot probes report retransmission counts proportional to loss.
        """
        rate = self.per_connection_mbps(rtt_ms)
        # Invert Mathis: rate = MSS/(RTT*sqrt(p)) with MSS*C folded into K.
        mss_bits = 1460 * 8
        p = (mss_bits / (rate * 1e6 * rtt_ms * 1e-3)) ** 2
        return min(p * self.loss_scale, 0.05)

    def connections_for_target(
        self, rtt_ms: float, target_mbps: float, knee: int = DEFAULT_KNEE
    ) -> int:
        """Smallest connection count whose aggregate cap reaches
        ``target_mbps`` (or the knee count if unreachable)."""
        single = self.per_connection_mbps(rtt_ms)
        if single <= 0:
            return knee
        needed = math.ceil(target_mbps / single)
        return max(1, min(needed, knee))


#: The VPC-peering default every module-level helper delegates to.
DEFAULT_MODEL = TcpModel()

# Backward-compatible aliases for the original module constants.
TCP_K_MBPS = DEFAULT_MODEL.k_mbps
TCP_ALPHA = DEFAULT_MODEL.alpha
MAX_SINGLE_CONNECTION_MBPS = DEFAULT_MODEL.max_single_mbps


def parallel_efficiency(connections: int, knee: int = DEFAULT_KNEE) -> float:
    """Aggregate scaling factor for ``connections`` parallel streams.

    Returns the multiple of the single-connection rate achieved by the
    aggregate: linear up to ``knee``, then flat with a small penalty for
    each extra stream.  Connection-count behaviour is a property of TCP
    itself, not of the path, so it lives outside :class:`TcpModel`.

    >>> parallel_efficiency(4)
    4.0
    >>> parallel_efficiency(8) == 8.0
    True
    >>> parallel_efficiency(12) < 8.0
    True
    """
    if connections < 0:
        raise ValueError(f"negative connection count: {connections}")
    if connections <= knee:
        return float(connections)
    excess = connections - knee
    return max(1.0, knee * (1.0 - OVERSUBSCRIPTION_PENALTY * excess))


def vm_efficiency(total_connections: int, knee: int = DEFAULT_VM_KNEE) -> float:
    """Effective NIC-throughput factor for a VM with ``total_connections``
    concurrently active WAN streams.

    >>> vm_efficiency(7)
    1.0
    >>> vm_efficiency(56) < vm_efficiency(24)
    True
    """
    if total_connections < 0:
        raise ValueError(f"negative connection count: {total_connections}")
    if total_connections <= knee:
        return 1.0
    excess = total_connections - knee
    return max(VM_EFFICIENCY_FLOOR, 1.0 - VM_CONGESTION_PENALTY * excess)


def per_connection_mbps(rtt_ms: float) -> float:
    """Single-connection rate under the VPC-peering default profile."""
    return DEFAULT_MODEL.per_connection_mbps(rtt_ms)


def aggregate_cap_mbps(
    rtt_ms: float, connections: int, knee: int = DEFAULT_KNEE
) -> float:
    """Aggregate pair ceiling under the VPC-peering default profile."""
    return DEFAULT_MODEL.aggregate_cap_mbps(rtt_ms, connections, knee)


def rtt_weight(rtt_ms: float, connections: int, knee: int = DEFAULT_KNEE) -> float:
    """Contention weight under the VPC-peering default profile."""
    return DEFAULT_MODEL.rtt_weight(rtt_ms, connections, knee)


def rtt_ms_for_distance(distance_miles: float) -> float:
    """Distance→RTT under the VPC-peering default profile."""
    return DEFAULT_MODEL.rtt_ms_for_distance(distance_miles)


def loss_rate_estimate(rtt_ms: float) -> float:
    """Loss estimate under the VPC-peering default profile."""
    return DEFAULT_MODEL.loss_rate_estimate(rtt_ms)


def connections_for_target(
    rtt_ms: float, target_mbps: float, knee: int = DEFAULT_KNEE
) -> int:
    """Connection count for a target rate under the default profile."""
    return DEFAULT_MODEL.connections_for_target(rtt_ms, target_mbps, knee)
