"""DC cluster topology: data centers, VMs, distances, RTTs, capacities.

A :class:`Topology` is the static description of a geo-distributed
cluster — the simulator (:mod:`repro.net.simulator`) adds time-varying
state on top of it.  Capacities follow the cloud model of §2.1: each
VM's WAN throughput is its NIC cap times the provider's WAN throttle
factor, and a DC's egress/ingress capacity is the sum over its VMs
(the *association* rule of §3.3.3 — multiple VMs in a DC act as one
large VM).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cloud.regions import Region, region as lookup_region
from repro.cloud.vm import VMType, vm_type as lookup_vm
from repro.net.matrix import BandwidthMatrix
from repro.net.profiles import VPC_PEERING, NetworkProfile
from repro.net.tcp import TcpModel


@dataclass(frozen=True)
class DataCenter:
    """A DC participating in the cluster: a region plus its VM fleet."""

    region: Region
    vm: VMType
    num_vms: int = 1

    @property
    def key(self) -> str:
        """The region key doubles as the DC identifier."""
        return self.region.key

    @property
    def egress_cap_mbps(self) -> float:
        """Total WAN egress capacity (association: VM caps sum)."""
        return self.vm.wan_cap_mbps * self.num_vms

    @property
    def ingress_cap_mbps(self) -> float:
        """Total WAN ingress capacity."""
        return self.vm.wan_cap_mbps * self.num_vms

    @property
    def total_vcpus(self) -> int:
        """Aggregate compute slots."""
        return self.vm.vcpus * self.num_vms


@dataclass
class Topology:
    """The cluster: an ordered set of DCs plus derived matrices.

    ``profile`` selects the WAN environment (VPC peering by default; see
    :mod:`repro.net.profiles`) — it determines the distance→RTT mapping
    and the per-connection TCP model the simulator applies.
    """

    dcs: list[DataCenter]
    profile: NetworkProfile = VPC_PEERING
    _distance: np.ndarray = field(init=False, repr=False)
    _rtt: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        keys = [dc.key for dc in self.dcs]
        if len(set(keys)) != len(keys):
            raise ValueError(f"duplicate DC keys: {keys}")
        n = len(self.dcs)
        self._distance = np.zeros((n, n))
        self._rtt = np.zeros((n, n))
        for i, a in enumerate(self.dcs):
            for j, b in enumerate(self.dcs):
                if i == j:
                    # Intra-DC RTT: sub-millisecond, use the model base.
                    self._rtt[i, j] = 0.5
                    continue
                d = a.region.distance_miles(b.region)
                self._distance[i, j] = d
                self._rtt[i, j] = self.profile.tcp.rtt_ms_for_distance(d)

    @classmethod
    def build(
        cls,
        region_keys: list[str] | tuple[str, ...],
        vm_key: str = "t2.medium",
        vms_per_dc: int | dict[str, int] = 1,
        profile: NetworkProfile = VPC_PEERING,
    ) -> "Topology":
        """Build a topology from region keys and a VM type.

        ``vms_per_dc`` may be a single count or a per-region mapping
        (for the heterogeneous-VMs experiments of §5.8.3).
        """
        dcs = []
        for key in region_keys:
            if isinstance(vms_per_dc, dict):
                count = vms_per_dc.get(key, 1)
            else:
                count = vms_per_dc
            dcs.append(
                DataCenter(lookup_region(key), lookup_vm(vm_key), count)
            )
        return cls(dcs, profile)

    @property
    def tcp(self) -> TcpModel:
        """The profile's TCP path model."""
        return self.profile.tcp

    @property
    def n(self) -> int:
        """Number of DCs."""
        return len(self.dcs)

    @property
    def keys(self) -> tuple[str, ...]:
        """DC keys in topology order."""
        return tuple(dc.key for dc in self.dcs)

    def index(self, key: str) -> int:
        """Index of a DC key."""
        for i, dc in enumerate(self.dcs):
            if dc.key == key:
                return i
        raise KeyError(f"unknown DC {key!r}; known: {self.keys}")

    def dc(self, key: str) -> DataCenter:
        """DataCenter by key."""
        return self.dcs[self.index(key)]

    def distance_miles(self, src: str, dst: str) -> float:
        """Great-circle distance between two DCs (the Dij feature)."""
        return float(self._distance[self.index(src), self.index(dst)])

    def rtt_ms(self, src: str, dst: str) -> float:
        """Modelled round-trip time between two DCs."""
        return float(self._rtt[self.index(src), self.index(dst)])

    def rtt_matrix(self) -> np.ndarray:
        """Full RTT matrix (ms), topology order."""
        return self._rtt.copy()

    def distance_matrix(self) -> BandwidthMatrix:
        """Distances as a labelled matrix (miles)."""
        return BandwidthMatrix(self.keys, self._distance.copy())

    def egress_caps(self) -> np.ndarray:
        """Per-DC egress capacity (Mbps), topology order."""
        return np.array([dc.egress_cap_mbps for dc in self.dcs])

    def ingress_caps(self) -> np.ndarray:
        """Per-DC ingress capacity (Mbps), topology order."""
        return np.array([dc.ingress_cap_mbps for dc in self.dcs])

    def single_connection_cap(self, src: str, dst: str) -> float:
        """Uncontended single-connection rate for a pair (Mbps)."""
        i, j = self.index(src), self.index(dst)
        cap = self.profile.tcp.per_connection_mbps(self._rtt[i, j])
        return min(
            cap, self.dcs[i].egress_cap_mbps, self.dcs[j].ingress_cap_mbps
        )

    def subset(self, region_keys: list[str] | tuple[str, ...]) -> "Topology":
        """A topology restricted to the given DCs."""
        return Topology([self.dc(k) for k in region_keys], self.profile)

    def with_extra_vms(self, extra: dict[str, int]) -> "Topology":
        """A copy with extra VMs added in the given DCs (§5.8.3)."""
        dcs = []
        for dc in self.dcs:
            add = extra.get(dc.key, 0)
            dcs.append(DataCenter(dc.region, dc.vm, dc.num_vms + add))
        return Topology(dcs, self.profile)
