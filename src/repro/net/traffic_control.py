"""Traffic-control (tc) style per-pair rate limits.

WANify's local agents throttle BW-rich (nearby) DC pairs so distant
pairs' parallel connections can actually claim capacity (§3.2.2,
"Throttling BW").  This module is the simulator-side equivalent of the
Linux ``tc`` command the prototype uses: a mutable table of per-ordered-
pair rate caps that the simulator consults when computing flow ceilings.
"""

from __future__ import annotations

from typing import Callable, Optional


class TrafficController:
    """Mutable per-(src, dst) rate caps in Mbps.

    An optional ``on_change`` callback lets the network simulator
    re-allocate rates as soon as a limit changes (as a real tc qdisc
    change would take effect immediately).
    """

    def __init__(self) -> None:
        self._limits: dict[tuple[str, str], float] = {}
        self._on_change: Optional[Callable[[], None]] = None

    def bind(self, on_change: Callable[[], None]) -> None:
        """Register the simulator's re-allocation hook."""
        self._on_change = on_change

    def _notify(self) -> None:
        if self._on_change is not None:
            self._on_change()

    def set_limit(self, src: str, dst: str, mbps: float) -> None:
        """Cap the aggregate rate from ``src`` to ``dst``."""
        if mbps <= 0:
            raise ValueError(f"throttle must be positive: {mbps}")
        self._limits[(src, dst)] = mbps
        self._notify()

    def clear_limit(self, src: str, dst: str) -> None:
        """Remove the cap for one pair (no-op if absent)."""
        if self._limits.pop((src, dst), None) is not None:
            self._notify()

    def clear_all(self) -> None:
        """Remove every cap."""
        if self._limits:
            self._limits.clear()
            self._notify()

    def limit(self, src: str, dst: str) -> float:
        """Current cap for the pair, or +inf when unthrottled."""
        return self._limits.get((src, dst), float("inf"))

    def limits(self) -> dict[tuple[str, str], float]:
        """Snapshot of all configured caps."""
        return dict(self._limits)
