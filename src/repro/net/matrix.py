"""Pair-wise bandwidth (and connection-count) matrices.

Both WANify outputs — predicted runtime BWs and optimal connection
counts — "are each structured as a matrix where each cell contains
pair-wise BW and the number of connections" (§2.3).  This module gives
that structure a small, typed API shared by the whole code base.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np


@dataclass
class BandwidthMatrix:
    """A labelled square matrix of per-DC-pair values (Mbps by default).

    ``values[i, j]`` is the value from DC ``keys[i]`` to DC ``keys[j]``.
    The diagonal is intra-DC and excluded from min/max statistics.
    """

    keys: tuple[str, ...]
    values: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        self.keys = tuple(self.keys)
        self.values = np.asarray(self.values, dtype=float)
        n = len(self.keys)
        if self.values.shape != (n, n):
            raise ValueError(
                f"matrix shape {self.values.shape} does not match "
                f"{n} keys"
            )

    @classmethod
    def zeros(cls, keys: Iterable[str]) -> "BandwidthMatrix":
        """A zero matrix over ``keys``."""
        keys = tuple(keys)
        return cls(keys, np.zeros((len(keys), len(keys))))

    @classmethod
    def full(cls, keys: Iterable[str], value: float) -> "BandwidthMatrix":
        """A constant matrix over ``keys``."""
        keys = tuple(keys)
        return cls(keys, np.full((len(keys), len(keys)), float(value)))

    @property
    def n(self) -> int:
        """Number of DCs."""
        return len(self.keys)

    def index(self, key: str) -> int:
        """Row/column index of ``key``."""
        try:
            return self.keys.index(key)
        except ValueError:
            raise KeyError(f"unknown DC {key!r}; known: {self.keys}") from None

    def get(self, src: str, dst: str) -> float:
        """Value from ``src`` to ``dst``."""
        return float(self.values[self.index(src), self.index(dst)])

    def set(self, src: str, dst: str, value: float) -> None:
        """Set the value from ``src`` to ``dst``."""
        self.values[self.index(src), self.index(dst)] = value

    def off_diagonal(self) -> np.ndarray:
        """Flat array of all inter-DC values."""
        mask = ~np.eye(self.n, dtype=bool)
        return self.values[mask]

    def min_bw(self) -> float:
        """The weakest inter-DC value — the paper's "minimum BW of the
        cluster", the quantity WANify tries to raise."""
        return float(self.off_diagonal().min())

    def max_bw(self) -> float:
        """The strongest inter-DC value."""
        return float(self.off_diagonal().max())

    def mean_bw(self) -> float:
        """Mean inter-DC value."""
        return float(self.off_diagonal().mean())

    def pairs(self) -> Iterator[tuple[str, str]]:
        """All ordered inter-DC pairs."""
        for i, a in enumerate(self.keys):
            for j, b in enumerate(self.keys):
                if i != j:
                    yield a, b

    def copy(self) -> "BandwidthMatrix":
        """Deep copy."""
        return BandwidthMatrix(self.keys, self.values.copy())

    def subset(self, keys: Iterable[str]) -> "BandwidthMatrix":
        """Restrict to the given DC keys (order preserved as given)."""
        keys = tuple(keys)
        idx = [self.index(k) for k in keys]
        return BandwidthMatrix(keys, self.values[np.ix_(idx, idx)])

    def significant_differences(
        self, other: "BandwidthMatrix", threshold: float = 100.0
    ) -> list[tuple[str, str, float]]:
        """Inter-DC pairs whose |self − other| exceeds ``threshold``.

        The paper treats >100 Mbps as significant throughout (Table 1,
        Figs. 9 and 11), citing [13, 24].
        """
        if other.keys != self.keys:
            other = other.subset(self.keys)
        out = []
        for a, b in self.pairs():
            delta = abs(self.get(a, b) - other.get(a, b))
            if delta > threshold:
                out.append((a, b, delta))
        return out

    def to_table(self, fmt: str = "{:8.0f}") -> str:
        """Human-readable table (used by examples and EXPERIMENTS.md)."""
        width = max(len(k) for k in self.keys) + 2
        header = " " * width + "".join(f"{k:>{width}}" for k in self.keys)
        rows = [header]
        for i, a in enumerate(self.keys):
            cells = "".join(
                f"{fmt.format(self.values[i, j]):>{width}}"
                for j in range(self.n)
            )
            rows.append(f"{a:<{width}}" + cells)
        return "\n".join(rows)
