"""Flow-level WAN simulator.

Transfers between DC pairs are *fluid flows*: whenever the set of active
transfers, the connection plan, a traffic-control limit, or the network
weather changes, the simulator re-solves the weighted max-min allocation
(:mod:`repro.net.sharing`) and re-schedules the next completion event.
This is the standard flow-level abstraction for WAN studies — accurate
at the timescales that matter here (seconds), and fast enough to run
hundreds of geo-analytics queries on a laptop.

Model summary (see DESIGN.md §5):

* each ordered DC pair carries one aggregate flow whose *weight* is
  ``parallel_efficiency(k) / RTT`` — k parallel connections compete like
  k TCP streams with the pair's RTT bias;
* the aggregate flow's *cap* is ``per_connection_mbps(RTT) ×
  parallel_efficiency(k)``, times the link's time-varying weather
  factor, and clipped by any traffic-control limit;
* DC egress and ingress NIC capacities are the shared resources;
* transfers sharing a pair split the pair's rate equally (the
  connection pool is multiplexed);
* intra-DC transfers ride the LAN at a fixed high rate, uncontended
  (§2.1: a single connection fully utilizes intra-DC bandwidth).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Optional

from repro.net import tcp
from repro.net.batch import FINISH_EPS, VectorKernel, allocate_batch, load_numpy
from repro.net.dynamics import FluctuationModel, StaticModel
from repro.net.matrix import BandwidthMatrix
from repro.net.sharing import PairFlow, allocate
from repro.net.topology import Topology
from repro.net.traffic_control import TrafficController
from repro.sim.kernel import Event, Simulator

#: Valid values for the ``kernel`` constructor knob.
KERNELS = ("scalar", "vectorized")

#: Intra-DC (LAN) rate per transfer, Mbps.  High enough that it never
#: bottlenecks a geo-analytics stage.
LAN_MBPS = 8000.0

#: How often the weather factors are refreshed while traffic is active.
WEATHER_REFRESH_S = 5.0

#: Congestion RTT bias: when a VM's egress demand exceeds its capacity,
#: long-RTT flows lose share super-proportionally (slow loss recovery,
#: buffer pressure).  This is the §2.2 "race condition and network
#: contention" that makes uniform parallelism useless for distant pairs
#: and is precisely what WANify's throttling neutralizes — capping the
#: BW-rich pairs removes the overload, restoring the weak flows' share.
CONGESTION_RTT_BIAS = 0.3

#: RTT normalization for the congestion bias (ms).
_RTT_NORM_MS = 100.0

_EPS = 1e-9


@dataclass
class Transfer:
    """One data transfer between DCs (or within one DC).

    ``size_mbits`` is the payload in megabits.  ``rate_mbps`` is the
    instantaneous fluid rate, updated by the simulator.
    """

    src: str
    dst: str
    size_mbits: float
    on_complete: Optional[Callable[["Transfer"], None]] = None
    tag: str = ""
    start_time: float = 0.0
    finish_time: Optional[float] = None
    transferred_mbits: float = 0.0
    rate_mbps: float = 0.0
    cancelled: bool = False

    @property
    def remaining_mbits(self) -> float:
        """Payload still to deliver."""
        return max(0.0, self.size_mbits - self.transferred_mbits)

    @property
    def done(self) -> bool:
        """True when fully delivered or cancelled."""
        return self.cancelled or self.remaining_mbits <= _EPS


@dataclass
class PairStats:
    """Accumulated statistics for one ordered DC pair."""

    mbits: float = 0.0
    active_seconds: float = 0.0
    min_rate_mbps: float = float("inf")

    @property
    def avg_rate_mbps(self) -> float:
        """Average achieved rate while the pair was active."""
        if self.active_seconds <= 0:
            return 0.0
        return self.mbits / self.active_seconds


class NetworkSimulator:
    """The WAN: topology + connection plan + weather + active transfers."""

    def __init__(
        self,
        topology: Topology,
        sim: Optional[Simulator] = None,
        fluctuation: Optional[FluctuationModel | StaticModel] = None,
        knee: int = tcp.DEFAULT_KNEE,
        time_offset: float = 0.0,
        kernel: str = "scalar",
    ) -> None:
        self.topology = topology
        self.sim = sim or Simulator()
        self.fluctuation = fluctuation if fluctuation is not None else StaticModel()
        self.knee = knee
        if kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {kernel!r}; expected one of {KERNELS}"
            )
        #: Whether ``kernel="vectorized"`` was requested but numpy was
        #: unavailable, forcing the scalar path.
        self.kernel_fallback = False
        self._vec: Optional[VectorKernel] = None
        self._np = None
        if kernel == "vectorized":
            np_mod = load_numpy()
            if np_mod is None:
                warnings.warn(
                    "kernel='vectorized' requested but numpy is not "
                    "importable; falling back to the scalar kernel",
                    RuntimeWarning,
                    stacklevel=2,
                )
                self.kernel_fallback = True
                kernel = "scalar"
            else:
                self._np = np_mod
                self._vec = VectorKernel(np_mod)
        #: Effective advancement kernel ("scalar" after a fallback).
        self.kernel = kernel
        #: Offset added to simulator time when evaluating network
        #: weather — lets measurement replays probe "the same network at
        #: a different hour" without restarting the clock.
        self.time_offset = time_offset
        self.tc = TrafficController()
        self.tc.bind(self._reallocate)
        self._connections = BandwidthMatrix.full(topology.keys, 1.0)
        self._active: dict[tuple[str, str], list[Transfer]] = {}
        self._lan_active: list[Transfer] = []
        self._stats: dict[tuple[str, str], PairStats] = {}
        self._last_progress_time = self.sim.now
        self._completion_event: Optional[Event] = None
        self._weather_event: Optional[Event] = None

    # ------------------------------------------------------------------
    # Connection plan
    # ------------------------------------------------------------------

    def set_connections(self, src: str, dst: str, count: int) -> None:
        """Set the parallel-connection count for one ordered pair."""
        if count < 1:
            raise ValueError(f"connection count must be ≥ 1: {count}")
        self._connections.set(src, dst, float(count))
        self._reallocate()

    def set_connection_plan(self, plan: BandwidthMatrix) -> None:
        """Install a whole connection-count matrix at once."""
        if plan.keys != self.topology.keys:
            plan = plan.subset(self.topology.keys)
        if (plan.off_diagonal() < 1).any():
            raise ValueError("connection plan has counts < 1")
        self._connections = plan.copy()
        self._reallocate()

    def connections(self, src: str, dst: str) -> int:
        """Current connection count for the pair."""
        return int(self._connections.get(src, dst))

    def connection_plan(self) -> BandwidthMatrix:
        """Copy of the current connection-count matrix."""
        return self._connections.copy()

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------

    def start_transfer(
        self,
        src: str,
        dst: str,
        size_mbits: float,
        on_complete: Optional[Callable[[Transfer], None]] = None,
        tag: str = "",
    ) -> Transfer:
        """Begin a transfer now; completion fires ``on_complete``."""
        if size_mbits < 0:
            raise ValueError(f"negative transfer size: {size_mbits}")
        self.topology.index(src)
        self.topology.index(dst)
        transfer = Transfer(src, dst, size_mbits, on_complete, tag)
        transfer.start_time = self.sim.now
        if size_mbits <= _EPS:
            # Zero-size transfer completes immediately (still async).
            self.sim.schedule(0.0, lambda: self._finish(transfer))
            return transfer
        if src == dst:
            self._lan_active.append(transfer)
            if self._vec is not None:
                self._vec.add(VectorKernel.LAN, transfer)
        else:
            self._active.setdefault((src, dst), []).append(transfer)
            if self._vec is not None:
                self._vec.add((src, dst), transfer)
        self._reallocate()
        return transfer

    def cancel_transfer(self, transfer: Transfer) -> None:
        """Abort a transfer; ``on_complete`` does not fire."""
        if transfer.done:
            return
        transfer.cancelled = True
        self._remove(transfer)
        self._reallocate()

    def _remove(self, transfer: Transfer) -> None:
        if transfer.src == transfer.dst:
            if transfer in self._lan_active:
                self._lan_active.remove(transfer)
                if self._vec is not None:
                    self._vec.remove(VectorKernel.LAN, transfer)
            return
        pair = (transfer.src, transfer.dst)
        bucket = self._active.get(pair)
        if bucket and transfer in bucket:
            bucket.remove(transfer)
            if self._vec is not None:
                self._vec.remove(pair, transfer)
            if not bucket:
                del self._active[pair]

    def _finish(self, transfer: Transfer) -> None:
        if transfer.cancelled:
            return
        transfer.transferred_mbits = transfer.size_mbits
        transfer.finish_time = self.sim.now
        self._remove(transfer)
        if transfer.on_complete is not None:
            transfer.on_complete(transfer)

    # ------------------------------------------------------------------
    # Rate allocation
    # ------------------------------------------------------------------

    def _weather_time(self) -> float:
        return self.sim.now + self.time_offset

    def pair_capacity(self, src: str, dst: str, connections: int) -> float:
        """Aggregate ceiling for a pair with ``connections`` streams now
        (weather and traffic control included, contention excluded)."""
        i, j = self.topology.index(src), self.topology.index(dst)
        rtt = self.topology.rtt_ms(src, dst)
        cap = self.topology.tcp.aggregate_cap_mbps(rtt, connections, self.knee)
        cap *= self.fluctuation.factor(i, j, self._weather_time())
        return min(cap, self.tc.limit(src, dst))

    def _progress(self, collect: bool = False) -> list[Transfer]:
        """Advance all active transfers to the current time.

        With ``collect``, the transfers whose payload is now fully
        delivered are gathered *during* the advancement walk and
        returned — the completion event's fast path, which used to
        progress every bucket and then re-scan the whole population a
        second time.  Collection happens even when no time has passed:
        a transfer can finish exactly at an instant another event
        already progressed to.
        """
        dt = self.sim.now - self._last_progress_time
        vec = self._vec
        finished: list[Transfer] = []
        if dt > 0:
            if vec is not None:
                finished = vec.advance(dt) if collect else vec.progress(dt) or []
            else:
                for bucket in self._active.values():
                    for transfer in bucket:
                        transfer.transferred_mbits = min(
                            transfer.size_mbits,
                            transfer.transferred_mbits + transfer.rate_mbps * dt,
                        )
                        if collect and transfer.remaining_mbits <= FINISH_EPS:
                            finished.append(transfer)
                for transfer in self._lan_active:
                    transfer.transferred_mbits = min(
                        transfer.size_mbits,
                        transfer.transferred_mbits + transfer.rate_mbps * dt,
                    )
                    if collect and transfer.remaining_mbits <= FINISH_EPS:
                        finished.append(transfer)
            for (src, dst), bucket in self._active.items():
                if vec is not None:
                    rate = vec.rate_total((src, dst))
                else:
                    rate = sum(t.rate_mbps for t in bucket)
                stats = self._stats.setdefault((src, dst), PairStats())
                stats.mbits += rate * dt
                stats.active_seconds += dt
                if rate > 0:
                    stats.min_rate_mbps = min(stats.min_rate_mbps, rate)
        elif collect:
            if vec is not None:
                finished = vec.advance(0.0)
            else:
                for bucket in self._active.values():
                    finished.extend(
                        t for t in bucket if t.remaining_mbits <= FINISH_EPS
                    )
                finished.extend(
                    t
                    for t in self._lan_active
                    if t.remaining_mbits <= FINISH_EPS
                )
        self._last_progress_time = self.sim.now
        return finished

    def _reallocate(self) -> None:
        """Re-solve rates and re-schedule the next completion event."""
        self._progress()

        pairs = sorted(self._active.keys())
        flows = []
        caps_by_src: dict[str, float] = {}
        specs = []
        for src, dst in pairs:
            k = int(self._connections.get(src, dst))
            rtt = self.topology.rtt_ms(src, dst)
            cap = self.pair_capacity(src, dst, k)
            specs.append((src, dst, k, rtt, cap))
            caps_by_src[src] = caps_by_src.get(src, 0.0) + cap
        for src, dst, k, rtt, cap in specs:
            i, j = self.topology.index(src), self.topology.index(dst)
            weight = self.topology.tcp.rtt_weight(rtt, k, self.knee)
            # Congestion RTT bias: overloaded senders squeeze their
            # long-RTT flows harder than fair weighting would.
            egress = self.topology.dcs[i].egress_cap_mbps
            overload = max(0.0, caps_by_src[src] / max(egress, _EPS) - 1.0)
            if overload > 0:
                weight /= 1.0 + (
                    CONGESTION_RTT_BIAS * overload * rtt / _RTT_NORM_MS
                )
            flows.append(PairFlow(i, j, weight=weight, cap=cap))
        # Per-VM congestion: a DC juggling many active streams loses
        # effective NIC throughput (see tcp.vm_efficiency).  Counted per
        # VM so association (more VMs per DC) raises the knee.
        out_conns = {i: 0 for i in range(self.topology.n)}
        in_conns = {j: 0 for j in range(self.topology.n)}
        for src, dst in pairs:
            k = int(self._connections.get(src, dst))
            out_conns[self.topology.index(src)] += k
            in_conns[self.topology.index(dst)] += k
        egress = []
        ingress = []
        for i, dc in enumerate(self.topology.dcs):
            egress.append(
                dc.egress_cap_mbps
                * tcp.vm_efficiency(out_conns[i] // max(1, dc.num_vms))
            )
            ingress.append(
                dc.ingress_cap_mbps
                * tcp.vm_efficiency(in_conns[i] // max(1, dc.num_vms))
            )
        if self._vec is not None:
            rates = allocate_batch(flows, egress, ingress, np=self._np)
            for (src, dst), rate in zip(pairs, rates):
                share = rate / len(self._active[(src, dst)])
                self._vec.set_share((src, dst), share)
            self._vec.set_share(VectorKernel.LAN, LAN_MBPS)
        else:
            rates = allocate(flows, egress, ingress)
            for (src, dst), rate in zip(pairs, rates):
                bucket = self._active[(src, dst)]
                share = rate / len(bucket)
                for transfer in bucket:
                    transfer.rate_mbps = share
            for transfer in self._lan_active:
                transfer.rate_mbps = LAN_MBPS

        self._schedule_completion()
        self._schedule_weather()

    def _schedule_completion(self) -> None:
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        if self._vec is not None:
            eta = self._vec.min_eta()
        else:
            eta = float("inf")
            for bucket in self._active.values():
                for transfer in bucket:
                    if transfer.rate_mbps > 0:
                        eta = min(
                            eta, transfer.remaining_mbits / transfer.rate_mbps
                        )
            for transfer in self._lan_active:
                if transfer.rate_mbps > 0:
                    eta = min(eta, transfer.remaining_mbits / transfer.rate_mbps)
        if eta < float("inf"):
            self._completion_event = self.sim.schedule(
                eta, self._on_completion, priority=1
            )

    def _on_completion(self) -> None:
        self._completion_event = None
        for transfer in self._progress(collect=True):
            self._finish(transfer)
        self._reallocate()

    def _schedule_weather(self) -> None:
        has_traffic = bool(self._active)
        if not has_traffic:
            if self._weather_event is not None:
                self._weather_event.cancel()
                self._weather_event = None
            return
        if self._weather_event is None:
            self._weather_event = self.sim.schedule(
                WEATHER_REFRESH_S, self._on_weather, priority=2, daemon=True
            )

    def _on_weather(self) -> None:
        self._weather_event = None
        self._reallocate()

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def active_transfers(self) -> list[Transfer]:
        """The WAN transfers currently in flight (LAN excluded).

        Each carries its ``tag`` (the runtime executor tags transfers
        ``"<job>:<stage>"``), pair, and instantaneous ``rate_mbps`` —
        the control plane's bandwidth governor reads this to attribute
        per-pair WAN share to jobs before shifting it.
        """
        if self._vec is not None:
            self._vec.sync_objects()
        out: list[Transfer] = []
        for bucket in self._active.values():
            out.extend(bucket)
        return out

    def current_rate(self, src: str, dst: str) -> float:
        """Instantaneous aggregate rate of an ordered pair (Mbps)."""
        if src == dst:
            if self._vec is not None:
                return self._vec.rate_total(VectorKernel.LAN)
            return sum(t.rate_mbps for t in self._lan_active)
        if self._vec is not None:
            return self._vec.rate_total((src, dst))
        bucket = self._active.get((src, dst), [])
        return sum(t.rate_mbps for t in bucket)

    def rate_matrix(self) -> BandwidthMatrix:
        """Instantaneous rates for all pairs."""
        out = BandwidthMatrix.zeros(self.topology.keys)
        for (src, dst), bucket in self._active.items():
            if self._vec is not None:
                out.set(src, dst, self._vec.rate_total((src, dst)))
            else:
                out.set(src, dst, sum(t.rate_mbps for t in bucket))
        return out

    def pair_statistics(self) -> dict[tuple[str, str], PairStats]:
        """Accumulated per-pair stats (bytes, active time, min rate)."""
        self._progress()
        return {pair: stats for pair, stats in self._stats.items()}

    def reset_statistics(self) -> None:
        """Zero the accumulated per-pair statistics."""
        self._progress()
        self._stats.clear()

    def total_wan_mbits(self) -> float:
        """Total inter-DC payload delivered so far."""
        self._progress()
        return sum(s.mbits for s in self._stats.values())

    def egress_mbits_by_dc(self) -> dict[str, float]:
        """WAN egress per source DC (for network-cost accounting)."""
        self._progress()
        out: dict[str, float] = {}
        for (src, _dst), stats in self._stats.items():
            out[src] = out.get(src, 0.0) + stats.mbits
        return out

    def min_observed_bw(self, volume_fraction: float = 0.005) -> float:
        """Weakest average pair rate among pairs that carried real
        traffic — the "minimum BW of the cluster" reported throughout §5.

        Pairs carrying less than ``volume_fraction`` of the total WAN
        volume are ignored: a trickle pair's average rate says nothing
        about link capacity (ifTop-style monitoring would not surface
        it either).
        """
        self._progress()
        total = sum(s.mbits for s in self._stats.values())
        if total <= 0:
            return 0.0
        floor = total * volume_fraction
        rates = [
            s.avg_rate_mbps
            for s in self._stats.values()
            if s.mbits >= floor and s.active_seconds > 0
        ]
        return min(rates) if rates else 0.0

    def observed_bw_matrix(self) -> BandwidthMatrix:
        """Average achieved rate per pair over the measured interval."""
        self._progress()
        out = BandwidthMatrix.zeros(self.topology.keys)
        for (src, dst), stats in self._stats.items():
            out.set(src, dst, stats.avg_rate_mbps)
        return out
