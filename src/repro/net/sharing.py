"""Weighted max-min bandwidth allocation (progressive filling).

Given a set of aggregate pair-flows — one per active (src DC, dst DC)
pair — each with a contention *weight* (``k_eff / RTT``, TCP's RTT bias)
and a *rate cap* (the aggregate TCP ceiling for its connection count,
path cap, and any traffic-control limit), allocate the DC egress and
ingress capacities by weighted progressive filling:

* raise a global water level λ; each unfrozen flow's rate is
  ``weight × λ``;
* a flow freezes when it hits its rate cap;
* when a resource (an egress or ingress NIC) saturates, every unfrozen
  flow through it freezes at its current rate.

The result is the classic weighted max-min allocation: feasible, Pareto
efficient, and biased toward short-RTT (heavy-weight) flows — which is
precisely why uniform parallelism fails to lift the weak links in
Fig. 2(b) while heterogeneous connection counts succeed in Fig. 2(c).
"""

from __future__ import annotations

from dataclasses import dataclass

_EPS = 1e-9


@dataclass
class PairFlow:
    """An aggregate flow between a DC pair.

    ``src``/``dst`` are topology indices; ``weight`` is the contention
    weight; ``cap`` the flow's own ceiling in Mbps.
    """

    src: int
    dst: int
    weight: float
    cap: float

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"flow weight must be positive: {self.weight}")
        if self.cap < 0:
            raise ValueError(f"negative cap: {self.cap}")


def allocate(
    flows: list[PairFlow],
    egress_caps: list[float],
    ingress_caps: list[float],
) -> list[float]:
    """Allocate rates (Mbps) to ``flows``; returns rates in input order.

    >>> flows = [PairFlow(0, 1, weight=1.0, cap=100.0)]
    >>> allocate(flows, [50.0, 50.0], [50.0, 50.0])
    [50.0]
    """
    n_flows = len(flows)
    if n_flows == 0:
        return []
    rates = [0.0] * n_flows
    frozen = [False] * n_flows
    remaining_egress = list(egress_caps)
    remaining_ingress = list(ingress_caps)

    # Flows with zero cap are frozen immediately.
    for idx, flow in enumerate(flows):
        if flow.cap <= _EPS:
            frozen[idx] = True

    while True:
        active = [i for i in range(n_flows) if not frozen[i]]
        if not active:
            break

        # Aggregate unfrozen weight per resource.
        egress_weight: dict[int, float] = {}
        ingress_weight: dict[int, float] = {}
        for i in active:
            flow = flows[i]
            egress_weight[flow.src] = (
                egress_weight.get(flow.src, 0.0) + flow.weight
            )
            ingress_weight[flow.dst] = (
                ingress_weight.get(flow.dst, 0.0) + flow.weight
            )

        # Largest permissible water-level increment.
        delta = float("inf")
        for i in active:
            flow = flows[i]
            delta = min(delta, (flow.cap - rates[i]) / flow.weight)
        for src, weight in egress_weight.items():
            delta = min(delta, remaining_egress[src] / weight)
        for dst, weight in ingress_weight.items():
            delta = min(delta, remaining_ingress[dst] / weight)

        if delta == float("inf"):
            break
        delta = max(delta, 0.0)

        # Advance the water level.
        for i in active:
            flow = flows[i]
            gain = flow.weight * delta
            rates[i] += gain
            remaining_egress[flow.src] -= gain
            remaining_ingress[flow.dst] -= gain

        # Freeze flows at their caps and flows through saturated resources.
        progressed = False
        for i in active:
            flow = flows[i]
            if rates[i] >= flow.cap - _EPS:
                frozen[i] = True
                progressed = True
        for i in [i for i in range(n_flows) if not frozen[i]]:
            flow = flows[i]
            if (
                remaining_egress[flow.src] <= _EPS
                or remaining_ingress[flow.dst] <= _EPS
            ):
                frozen[i] = True
                progressed = True
        if not progressed:
            # Numerical guard: nothing froze despite a finite delta.
            break

    return [max(0.0, min(r, flows[i].cap)) for i, r in enumerate(rates)]
