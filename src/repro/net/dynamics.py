"""Seeded bandwidth-fluctuation processes.

The paper leans on WAN traffic measurements [38] showing per-link
bandwidth fluctuates but is predictable on the scale of minutes, and
reports an overall standard deviation of ~184 Mbps across its collected
runtime BWs (§5.1).  We model each directed link's capacity as

    cap(t) = base × (1 + diurnal(t) + noise(t))

* ``diurnal`` — a phase-shifted sinusoid per link (daily cycle),
* ``noise`` — a piecewise-smooth mean-reverting term: per-link Gaussian
  values drawn on a coarse time grid (deterministically from the seed,
  link, and grid index), linearly interpolated between grid points.

The grid construction makes ``factor(i, j, t)`` a pure function of
``(seed, i, j, t)``: no sequential state, so measurement replays and
independent simulator instances see the same network weather.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Default coarse grid for the noise term (seconds).  WAN traffic is
#: "predictable on the scale of minutes" ([38], cited in §5.8.2), so
#: link weather holds for ~5 minutes — long enough that a snapshot taken
#: at query start stays informative through the query, short enough
#: that a static matrix measured hours earlier is stale.
DEFAULT_NOISE_PERIOD_S = 300.0

#: Day length for the diurnal term.
DAY_S = 24 * 3600.0


def _link_hash(seed: int, i: int, j: int, bucket: int) -> np.random.Generator:
    """A generator deterministically keyed by (seed, link, time bucket)."""
    key = np.uint64(seed) * np.uint64(1_000_003)
    key += np.uint64(i * 131 + j) * np.uint64(2_147_483_647)
    key += np.uint64(bucket & 0xFFFFFFFF)
    return np.random.default_rng(int(key))


@dataclass(frozen=True)
class FluctuationModel:
    """Multiplicative time-varying factor per directed link.

    ``sigma`` is the relative standard deviation of the noise term and
    ``diurnal_amplitude`` that of the daily cycle; both default to
    values that put the absolute SD of a mid-range (~1 Gbps) link near
    the paper's ~184 Mbps.
    """

    seed: int = 7
    sigma: float = 0.13
    diurnal_amplitude: float = 0.08
    noise_period_s: float = DEFAULT_NOISE_PERIOD_S
    floor: float = 0.35
    ceiling: float = 1.65

    def _noise_at_bucket(self, i: int, j: int, bucket: int) -> float:
        rng = _link_hash(self.seed, i, j, bucket)
        return float(rng.normal(0.0, self.sigma))

    def _phase(self, i: int, j: int) -> float:
        rng = _link_hash(self.seed, i, j, -1)
        return float(rng.uniform(0.0, 2.0 * np.pi))

    def factor(self, i: int, j: int, t: float) -> float:
        """Multiplicative capacity factor for link ``i → j`` at time ``t``.

        Deterministic in ``(seed, i, j, t)``; mean ≈ 1.

        >>> m = FluctuationModel(seed=1)
        >>> m.factor(0, 1, 10.0) == m.factor(0, 1, 10.0)
        True
        """
        if i == j:
            return 1.0
        bucket = int(np.floor(t / self.noise_period_s))
        frac = t / self.noise_period_s - bucket
        n0 = self._noise_at_bucket(i, j, bucket)
        n1 = self._noise_at_bucket(i, j, bucket + 1)
        noise = n0 * (1.0 - frac) + n1 * frac
        diurnal = self.diurnal_amplitude * np.sin(
            2.0 * np.pi * t / DAY_S + self._phase(i, j)
        )
        return float(np.clip(1.0 + noise + diurnal, self.floor, self.ceiling))

    def snapshot_jitter(self, i: int, j: int, t: float, window_s: float) -> float:
        """Extra multiplicative jitter for very short probes.

        A 1-second snapshot sees transient queueing the 20-second stable
        average does not; jitter shrinks with the window so snapshots
        stay positively correlated with stable BW (§2.2's Pearson
        observation).
        """
        if window_s >= 20.0:
            return 1.0
        scale = self.sigma * 0.6 * (1.0 - window_s / 20.0)
        rng = _link_hash(self.seed ^ 0x5EED, i, j, int(t * 1000) % (1 << 31))
        return float(np.clip(1.0 + rng.normal(0.0, scale), 0.5, 1.5))


@dataclass(frozen=True)
class StaticModel:
    """A no-fluctuation stand-in with the same interface (for tests and
    for isolating optimizer behaviour from network weather)."""

    def factor(self, i: int, j: int, t: float) -> float:
        """Always 1."""
        return 1.0

    def snapshot_jitter(self, i: int, j: int, t: float, window_s: float) -> float:
        """Always 1."""
        return 1.0
