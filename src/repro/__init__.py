"""WANify reproduction — runtime WAN bandwidth gauging and balancing.

This package reproduces *WANify: Gauging and Balancing Runtime WAN
Bandwidth for Geo-distributed Data Analytics* (IISWC 2025) end to end on
a flow-level WAN simulator:

* :mod:`repro.net` — the WAN substrate (topology, TCP model, contention,
  fluctuation, measurement, traffic control);
* :mod:`repro.ml` — from-scratch CART / Random Forest regressors;
* :mod:`repro.core` — WANify itself (prediction model, Algorithm 1,
  Eq. 2/3 global optimizer, AIMD local agents, heterogeneity handling);
* :mod:`repro.gda` — a Spark-like geo-distributed analytics engine with
  Tetrium / Kimchi / SAGQ policies and the paper's workloads;
* :mod:`repro.runtime` — the long-running service layer: shared
  telemetry store, drift detection with mid-job re-planning, a
  multi-job scheduler, and named bandwidth-dynamics scenarios
  (diurnal swing, flash crowd, link degradation/failure, step drop);
* :mod:`repro.experiments` — one module per paper table/figure, plus
  extensions such as the online-vs-static re-planning comparison.

* :mod:`repro.pipeline` — the composable public API: ``Protocol``-typed
  stage contracts composed by one :class:`~repro.pipeline.core.Pipeline`
  object, string-keyed registries for variants / policies / scenarios,
  and the layered config system every entry point resolves through.

Most users start with the pipeline::

    from repro import Pipeline, Topology, FluctuationModel, PAPER_REGIONS

    topology = Topology.build(PAPER_REGIONS, "t2.medium")
    pipe = Pipeline(topology, FluctuationModel(seed=42))
    pipe.train()
    bw = pipe.predict(at_time=3600.0)
    plan = pipe.plan(bw)
    deployment = pipe.deployment("wanify-tc", bw=bw)

The runtime service is one import away (resolved lazily so the light
facade stays light)::

    from repro import PipelineService, ServiceConfig

    service = PipelineService.build(ServiceConfig(scenario="step-drop"))
    service.submit(job)
    service.run()

Extensions register by name and are then reachable from every entry
point (``deployment("my-variant")``, ``--policy kimchi``,
``scenario("diurnal+flash-crowd")``)::

    from repro import register_variant, register_policy, register_scenario

The legacy ``WANify`` / ``WANifyService`` spellings remain as
deprecated shims.  See ``examples/quickstart.py`` and README.md for a
guided tour, and ``python -m repro --help`` for the command-line
interface (``python -m repro serve`` drives the runtime service).
"""

from repro.cloud.regions import PAPER_REGIONS
from repro.core.globalopt import GlobalPlan, optimize_connections
from repro.core.interface import WANify, WANifyConfig, WANifyDeployment
from repro.core.predictor import WanPredictionModel
from repro.net.dynamics import FluctuationModel, StaticModel
from repro.net.matrix import BandwidthMatrix
from repro.net.profiles import (
    EDGE_CLOUD,
    PUBLIC_INTERNET,
    VPC_PEERING,
    NetworkProfile,
    network_profile,
)
from repro.net.topology import DataCenter, Topology
from repro.pipeline import (
    CachedPredictor,
    ConfigArguments,
    Deployment,
    DeploymentStrategy,
    Gauger,
    MultiBackendPlanner,
    PassiveTelemetryGauger,
    Pipeline,
    PipelineConfig,
    Planner,
    Predictor,
    Registry,
    ServiceConfig,
    admission_policy,
    admission_policy_registry,
    gauger_registry,
    layered_config,
    placement_policy,
    planner_registry,
    policy_registry,
    predictor_registry,
    preemption_policy_registry,
    register_admission_policy,
    register_gauger,
    register_planner,
    register_policy,
    register_predictor,
    register_preemption_policy,
    register_scenario,
    register_tuner_policy,
    register_variant,
    scenario_registry,
    tuner_registry,
    variant_registry,
)

__version__ = "1.4.0"

#: Runtime-service names resolved lazily (PEP 562) — they pull in the
#: GDA engine and scipy, which ``import repro`` alone should not pay
#: for.
_LAZY_EXPORTS = {
    "DriftDetector": "repro.runtime.drift",
    "JobScheduler": "repro.runtime.scheduler",
    "PipelineService": "repro.runtime.service",
    "SCENARIOS": "repro.runtime.scenarios",
    "SLO": "repro.runtime.scheduling",
    "ControlPlane": "repro.runtime.control",
    "BandwidthGovernor": "repro.runtime.control",
    "ConcurrencyAutoscaler": "repro.runtime.control",
    "TelemetryStore": "repro.runtime.telemetry",
    "WANifyService": "repro.runtime.service",
    "register_scenario_model": "repro.runtime.scenarios",
    "scenario": "repro.runtime.scenarios",
    "spread_slos": "repro.runtime.scheduling",
}


def __getattr__(name: str):
    """Lazy facade for the runtime service layer."""
    target = _LAZY_EXPORTS.get(name)
    if target is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target), name)


def __dir__() -> list[str]:
    return sorted(set(__all__) | set(globals()))


__all__ = [
    "DriftDetector",
    "JobScheduler",
    "PipelineService",
    "SCENARIOS",
    "SLO",
    "TelemetryStore",
    "WANifyService",
    "register_scenario_model",
    "scenario",
    "spread_slos",
    "BandwidthMatrix",
    "CachedPredictor",
    "ConfigArguments",
    "DataCenter",
    "Deployment",
    "DeploymentStrategy",
    "EDGE_CLOUD",
    "FluctuationModel",
    "Gauger",
    "GlobalPlan",
    "MultiBackendPlanner",
    "NetworkProfile",
    "PAPER_REGIONS",
    "PUBLIC_INTERNET",
    "PassiveTelemetryGauger",
    "Pipeline",
    "PipelineConfig",
    "Planner",
    "Predictor",
    "Registry",
    "ServiceConfig",
    "StaticModel",
    "Topology",
    "VPC_PEERING",
    "WANify",
    "WANifyConfig",
    "WANifyDeployment",
    "WanPredictionModel",
    "admission_policy",
    "admission_policy_registry",
    "gauger_registry",
    "layered_config",
    "network_profile",
    "optimize_connections",
    "placement_policy",
    "planner_registry",
    "policy_registry",
    "predictor_registry",
    "BandwidthGovernor",
    "ConcurrencyAutoscaler",
    "ControlPlane",
    "preemption_policy_registry",
    "register_admission_policy",
    "register_gauger",
    "register_planner",
    "register_policy",
    "register_predictor",
    "register_preemption_policy",
    "register_scenario",
    "register_tuner_policy",
    "register_variant",
    "scenario_registry",
    "tuner_registry",
    "variant_registry",
    "__version__",
]
