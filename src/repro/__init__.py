"""WANify reproduction — runtime WAN bandwidth gauging and balancing.

This package reproduces *WANify: Gauging and Balancing Runtime WAN
Bandwidth for Geo-distributed Data Analytics* (IISWC 2025) end to end on
a flow-level WAN simulator:

* :mod:`repro.net` — the WAN substrate (topology, TCP model, contention,
  fluctuation, measurement, traffic control);
* :mod:`repro.ml` — from-scratch CART / Random Forest regressors;
* :mod:`repro.core` — WANify itself (prediction model, Algorithm 1,
  Eq. 2/3 global optimizer, AIMD local agents, heterogeneity handling);
* :mod:`repro.gda` — a Spark-like geo-distributed analytics engine with
  Tetrium / Kimchi / SAGQ policies and the paper's workloads;
* :mod:`repro.experiments` — one module per paper table/figure.

Most users start with the facade::

    from repro import WANify, Topology, FluctuationModel, PAPER_REGIONS

    topology = Topology.build(PAPER_REGIONS, "t2.medium")
    wanify = WANify(topology, FluctuationModel(seed=42))
    wanify.train()
    bw = wanify.predict_runtime_bw(at_time=3600.0)
    plan = wanify.make_plan(bw)

See ``examples/quickstart.py`` and README.md for a guided tour, and
``python -m repro --help`` for the command-line interface.
"""

from repro.cloud.regions import PAPER_REGIONS
from repro.core.globalopt import GlobalPlan, optimize_connections
from repro.core.interface import WANify, WANifyConfig, WANifyDeployment
from repro.core.predictor import WanPredictionModel
from repro.net.dynamics import FluctuationModel, StaticModel
from repro.net.matrix import BandwidthMatrix
from repro.net.profiles import (
    EDGE_CLOUD,
    PUBLIC_INTERNET,
    VPC_PEERING,
    NetworkProfile,
    network_profile,
)
from repro.net.topology import DataCenter, Topology

__version__ = "1.0.0"

__all__ = [
    "BandwidthMatrix",
    "DataCenter",
    "EDGE_CLOUD",
    "FluctuationModel",
    "GlobalPlan",
    "NetworkProfile",
    "PAPER_REGIONS",
    "PUBLIC_INTERNET",
    "StaticModel",
    "Topology",
    "VPC_PEERING",
    "WANify",
    "WANifyConfig",
    "WANifyDeployment",
    "WanPredictionModel",
    "network_profile",
    "optimize_connections",
    "__version__",
]
