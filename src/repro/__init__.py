"""WANify reproduction — runtime WAN bandwidth gauging and balancing.

This package reproduces *WANify: Gauging and Balancing Runtime WAN
Bandwidth for Geo-distributed Data Analytics* (IISWC 2025) end to end on
a flow-level WAN simulator:

* :mod:`repro.net` — the WAN substrate (topology, TCP model, contention,
  fluctuation, measurement, traffic control);
* :mod:`repro.ml` — from-scratch CART / Random Forest regressors;
* :mod:`repro.core` — WANify itself (prediction model, Algorithm 1,
  Eq. 2/3 global optimizer, AIMD local agents, heterogeneity handling);
* :mod:`repro.gda` — a Spark-like geo-distributed analytics engine with
  Tetrium / Kimchi / SAGQ policies and the paper's workloads;
* :mod:`repro.runtime` — the long-running service layer: shared
  telemetry store, drift detection with mid-job re-planning, a
  multi-job scheduler, and named bandwidth-dynamics scenarios
  (diurnal swing, flash crowd, link degradation/failure, step drop);
* :mod:`repro.experiments` — one module per paper table/figure, plus
  extensions such as the online-vs-static re-planning comparison.

Most users start with the facade::

    from repro import WANify, Topology, FluctuationModel, PAPER_REGIONS

    topology = Topology.build(PAPER_REGIONS, "t2.medium")
    wanify = WANify(topology, FluctuationModel(seed=42))
    wanify.train()
    bw = wanify.predict_runtime_bw(at_time=3600.0)
    plan = wanify.make_plan(bw)

The runtime service is one import away (resolved lazily so the light
facade stays light)::

    from repro import ServiceConfig, WANifyService

    service = WANifyService.build(ServiceConfig(scenario="step-drop"))
    service.submit(job)
    service.run()

See ``examples/quickstart.py`` and README.md for a guided tour, and
``python -m repro --help`` for the command-line interface
(``python -m repro serve`` drives the runtime service).
"""

from repro.cloud.regions import PAPER_REGIONS
from repro.core.globalopt import GlobalPlan, optimize_connections
from repro.core.interface import WANify, WANifyConfig, WANifyDeployment
from repro.core.predictor import WanPredictionModel
from repro.net.dynamics import FluctuationModel, StaticModel
from repro.net.matrix import BandwidthMatrix
from repro.net.profiles import (
    EDGE_CLOUD,
    PUBLIC_INTERNET,
    VPC_PEERING,
    NetworkProfile,
    network_profile,
)
from repro.net.topology import DataCenter, Topology

__version__ = "1.1.0"

#: Runtime-service names resolved lazily (PEP 562) — they pull in the
#: GDA engine and scipy, which ``import repro`` alone should not pay
#: for.
_LAZY_EXPORTS = {
    "DriftDetector": "repro.runtime.drift",
    "JobScheduler": "repro.runtime.scheduler",
    "SCENARIOS": "repro.runtime.scenarios",
    "ServiceConfig": "repro.runtime.service",
    "TelemetryStore": "repro.runtime.telemetry",
    "WANifyService": "repro.runtime.service",
    "scenario": "repro.runtime.scenarios",
}


def __getattr__(name: str):
    """Lazy facade for the runtime service layer."""
    target = _LAZY_EXPORTS.get(name)
    if target is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target), name)


def __dir__() -> list[str]:
    return sorted(set(__all__) | set(globals()))


__all__ = [
    "DriftDetector",
    "JobScheduler",
    "SCENARIOS",
    "ServiceConfig",
    "TelemetryStore",
    "WANifyService",
    "scenario",
    "BandwidthMatrix",
    "DataCenter",
    "EDGE_CLOUD",
    "FluctuationModel",
    "GlobalPlan",
    "NetworkProfile",
    "PAPER_REGIONS",
    "PUBLIC_INTERNET",
    "StaticModel",
    "Topology",
    "VPC_PEERING",
    "WANify",
    "WANifyConfig",
    "WANifyDeployment",
    "WanPredictionModel",
    "network_profile",
    "optimize_connections",
    "__version__",
]
