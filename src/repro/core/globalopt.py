"""Static global optimization — Eq. 2 and Eq. 3 (§3.2.1).

From the predicted runtime BW matrix, the global optimizer derives an
*optimal range* of network configurations per DC pair: minimum and
maximum connection counts and the corresponding achievable BWs.  The
greedy rule "favors DC pairs with a higher closeness index" — i.e.
distant, weak pairs get up to ``M`` connections from each source while
strong pairs keep few — because the per-source connection budget is
limited and over-parallelizing strong links causes the race conditions
of Fig. 2(b).

Achievable BW uses the paper's empirical linearity: ``BW × connections``
(optionally scaled by the refactoring vector ``rvec`` for heterogeneous
providers and by skew weights ``ws``; §3.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.relations import infer_dc_relations
from repro.net.matrix import BandwidthMatrix
from repro.net.simulator import LAN_MBPS

#: Per-VM connection budget per pair; the paper's examples use M = 8
#: and §5.1 uses 8 uniform connections as the best uniform setting.
DEFAULT_MAX_CONNECTIONS = 8

#: Hard ceiling per pair (the §1 sizing example allows up to 10).
ABSOLUTE_MAX_CONNECTIONS = 10

#: Per-VM sustainable stream budget: Eq. 3's greedy allocation respects
#: "a reference DC that has limited number of total parallel
#: connections" (§3.2.1).  When a row of maxCons sums beyond this, it is
#: proportionally rescaled — which is also how skew weights ws
#: "proportionally re-allocate the optimal range" (§3.3.1): they shift
#: budget between a row's pairs rather than inflating the total.
PER_VM_STREAM_BUDGET = 24


@dataclass
class GlobalPlan:
    """The optimizer's output: per-pair connection ranges and BWs.

    All four matrices share the DC key order of the input.  Local agents
    treat [min, max] as the window AIMD may move within (§3.2.2).
    """

    keys: tuple[str, ...]
    relations: np.ndarray
    min_connections: BandwidthMatrix
    max_connections: BandwidthMatrix
    min_bw: BandwidthMatrix
    max_bw: BandwidthMatrix

    def connection_window(self, src: str, dst: str) -> tuple[int, int]:
        """(min, max) connection counts for a pair."""
        return (
            int(self.min_connections.get(src, dst)),
            int(self.max_connections.get(src, dst)),
        )

    def bw_window(self, src: str, dst: str) -> tuple[float, float]:
        """(min, max) achievable BW for a pair (Mbps)."""
        return self.min_bw.get(src, dst), self.max_bw.get(src, dst)


def _pair_weights(
    keys: tuple[str, ...], skew_weights: dict[str, float] | None
) -> np.ndarray:
    """Per-pair ws factors from per-DC skew weights (§3.3.1).

    Skew weights are normalized to mean 1; a pair's factor is the larger
    of its endpoints' weights, floored at 1 — links touching data-heavy
    DCs get proportionally *more* of the connection budget ("higher
    weightage is given to data-intensive DC regions") and no link is
    penalized below its skew-unaware allocation.
    """
    n = len(keys)
    if not skew_weights:
        return np.ones((n, n))
    w = np.array([float(skew_weights.get(k, 1.0)) for k in keys])
    if (w <= 0).any():
        raise ValueError(f"skew weights must be positive: {skew_weights}")
    w = w / w.mean()
    pair = np.maximum(w[:, None], w[None, :])
    return np.maximum(pair, 1.0)


def _rvec_matrix(
    keys: tuple[str, ...], rvec: dict[str, float] | None
) -> np.ndarray:
    """Refactoring-vector factors per pair (§3.3.3); default all ones.

    ``rvec`` maps DC key → provider/VM scaling; a pair's factor is the
    geometric mean of its endpoints (BW between heterogeneous providers
    varies proportionally on both ends).
    """
    n = len(keys)
    if not rvec:
        return np.ones((n, n))
    r = np.array([float(rvec.get(k, 1.0)) for k in keys])
    if (r <= 0).any():
        raise ValueError(f"rvec entries must be positive: {rvec}")
    return np.sqrt(r[:, None] * r[None, :])


def optimize_connections(
    bw: BandwidthMatrix,
    max_connections: int = DEFAULT_MAX_CONNECTIONS,
    min_difference: float = 100.0,
    skew_weights: dict[str, float] | None = None,
    rvec: dict[str, float] | None = None,
    intra_bw: float = LAN_MBPS,
) -> GlobalPlan:
    """Run Algorithm 1 + Eq. 2/3 on a (predicted) runtime BW matrix.

    ``bw`` carries inter-DC values; the diagonal is replaced by
    ``intra_bw`` so intra-DC lands on the top closeness level, exactly
    as in the paper's worked example.
    """
    if max_connections < 1:
        raise ValueError(f"max_connections must be ≥ 1: {max_connections}")
    n = bw.n
    keys = bw.keys
    work = bw.values.copy()
    np.fill_diagonal(work, intra_bw)

    rel = infer_dc_relations(work, min_difference)

    # Eq. 2
    sum_all = int(rel.sum()) - n
    if sum_all <= 0:
        # Degenerate: all pairs on the top level; fall back to 1 each.
        sum_all = max(1, int(rel.sum()))
    max_per_row = rel.max(axis=1)

    ws = _pair_weights(keys, skew_weights)
    rv = _rvec_matrix(keys, rvec)
    m = max_connections

    # Eq. 3
    min_candidate = np.floor(rel / sum_all * (m - 1))
    min_cons = np.maximum(min_candidate, 1.0) * ws
    max_cons = np.ceil(m * rel / max_per_row[:, None]) * ws

    min_cons = np.clip(np.round(min_cons), 1, ABSOLUTE_MAX_CONNECTIONS)
    max_cons = np.clip(np.round(max_cons), 1, ABSOLUTE_MAX_CONNECTIONS)
    np.fill_diagonal(min_cons, 1)
    np.fill_diagonal(max_cons, 1)

    # Respect the per-VM stream budget row by row (see
    # PER_VM_STREAM_BUDGET): rescale oversubscribed rows proportionally.
    # With skew weights the heavy rows hit the budget first, so the
    # rescale is what "proportionally re-allocates the optimal range"
    # (§3.3.1) — within a data-heavy row, budget shifts from its
    # ws-floored pairs toward its boosted ones.  (Shrinking data-light
    # rows' budgets outright was tried and rejected: it starves the
    # light senders at shared receiver NICs and drags the cluster's
    # minimum BW below the single-connection baseline, the opposite of
    # the paper's Fig. 10 observation.)
    off = ~np.eye(n, dtype=bool)
    for i in range(n):
        row_sum = max_cons[i][off[i]].sum()
        if row_sum > PER_VM_STREAM_BUDGET:
            scale = PER_VM_STREAM_BUDGET / row_sum
            scaled = np.maximum(1, np.floor(max_cons[i] * scale))
            scaled[i] = 1
            max_cons[i] = scaled

    # The window must be well-ordered even after skew scaling.
    min_cons = np.minimum(min_cons, max_cons)

    min_bw = bw.values * min_cons * rv
    max_bw = bw.values * max_cons * rv
    np.fill_diagonal(min_bw, 0.0)
    np.fill_diagonal(max_bw, 0.0)

    return GlobalPlan(
        keys=keys,
        relations=rel,
        min_connections=BandwidthMatrix(keys, min_cons),
        max_connections=BandwidthMatrix(keys, max_cons),
        min_bw=BandwidthMatrix(keys, min_bw),
        max_bw=BandwidthMatrix(keys, max_bw),
    )


def uniform_plan(
    bw: BandwidthMatrix, connections: int = DEFAULT_MAX_CONNECTIONS
) -> GlobalPlan:
    """A uniform-parallelism plan (the WANify-P baseline of §5.3.1):
    every pair gets the same fixed connection count."""
    keys = bw.keys
    n = bw.n
    cons = np.full((n, n), float(connections))
    np.fill_diagonal(cons, 1)
    achievable = bw.values * cons
    np.fill_diagonal(achievable, 0.0)
    return GlobalPlan(
        keys=keys,
        relations=np.ones((n, n), dtype=int),
        min_connections=BandwidthMatrix(keys, cons.copy()),
        max_connections=BandwidthMatrix(keys, cons.copy()),
        min_bw=BandwidthMatrix(keys, achievable.copy()),
        max_bw=BandwidthMatrix(keys, achievable.copy()),
    )


def static_range_plan(
    bw: BandwidthMatrix,
    min_connections: int = 1,
    max_connections: int = DEFAULT_MAX_CONNECTIONS,
) -> GlobalPlan:
    """A fixed [min, max] window for every pair — the "Local only"
    ablation variant of §5.5 (local AIMD without inferred closeness)."""
    keys = bw.keys
    n = bw.n
    lo = np.full((n, n), float(min_connections))
    hi = np.full((n, n), float(max_connections))
    np.fill_diagonal(lo, 1)
    np.fill_diagonal(hi, 1)
    min_bw = bw.values * lo
    max_bw = bw.values * hi
    np.fill_diagonal(min_bw, 0.0)
    np.fill_diagonal(max_bw, 0.0)
    return GlobalPlan(
        keys=keys,
        relations=np.ones((n, n), dtype=int),
        min_connections=BandwidthMatrix(keys, lo),
        max_connections=BandwidthMatrix(keys, hi),
        min_bw=BandwidthMatrix(keys, min_bw),
        max_bw=BandwidthMatrix(keys, max_bw),
    )
