"""Heterogeneity handling (§3.3).

Three mechanisms:

* **skew weights** ``ws`` — per-DC factors derived from the input-data
  distribution in the underlying storage (HDFS); data-heavy DCs get a
  proportionally larger share of the connection budget (§3.3.1);
* **refactoring vector** ``rvec`` — a-priori per-DC scaling for
  multi-cloud / heterogeneous VM deployments whose BWs "vary
  proportionally" (§3.3.3); optional, defaults to all ones;
* **association** — when a DC hosts multiple VMs they are treated as one
  large VM for global optimization (BWs summed), and the resulting plan
  is proportionally chunked back across the workers (§3.3.3).
"""

from __future__ import annotations

import numpy as np

from repro.core.globalopt import GlobalPlan
from repro.net.matrix import BandwidthMatrix


def skew_weights_from_sizes(data_mb_by_dc: dict[str, float]) -> dict[str, float]:
    """Per-DC skew weights from input-data volumes, normalized to mean 1.

    >>> w = skew_weights_from_sizes({"a": 300.0, "b": 100.0, "c": 200.0})
    >>> round(w["a"], 2), round(w["b"], 2)
    (1.5, 0.5)
    """
    if not data_mb_by_dc:
        raise ValueError("empty data distribution")
    total = sum(data_mb_by_dc.values())
    if total <= 0:
        raise ValueError(f"non-positive total data volume: {total}")
    n = len(data_mb_by_dc)
    return {
        dc: max(0.05, size / total * n) for dc, size in data_mb_by_dc.items()
    }


def refactoring_vector(
    providers: dict[str, str], provider_factors: dict[str, float] | None = None
) -> dict[str, float]:
    """Build rvec from each DC's provider (aws/gcp/...).

    ``provider_factors`` maps provider → empirically derived BW scaling
    (default: identity for AWS, slight discount for GCP cross-cloud
    paths, matching the paper's "vary proportionally" observation).
    """
    factors = provider_factors or {"aws": 1.0, "gcp": 0.9}
    out = {}
    for dc, provider in providers.items():
        factor = factors.get(provider, 1.0)
        if factor <= 0:
            raise ValueError(
                f"rvec factor must be positive: {provider}={factor}"
            )
        out[dc] = factor
    return out


def associated_bw(
    per_vm_bw: BandwidthMatrix, vms_per_dc: dict[str, int]
) -> BandwidthMatrix:
    """Association: sum per-VM BWs into per-DC capacity (§3.3.3).

    A pair's combined BW scales with the smaller VM fleet of its two
    endpoints (transfers are VM-to-VM and pair up across DCs).
    """
    out = per_vm_bw.copy()
    for src, dst in out.pairs():
        scale = min(vms_per_dc.get(src, 1), vms_per_dc.get(dst, 1))
        if scale < 1:
            raise ValueError(f"VM counts must be ≥ 1: {vms_per_dc}")
        out.set(src, dst, out.get(src, dst) * scale)
    return out


def chunk_plan_for_workers(
    plan: GlobalPlan, dc: str, num_vms: int
) -> list[dict[str, tuple[int, int]]]:
    """Split a DC's connection windows across its VMs (§3.3.3).

    "Once connections are optimized by treating multiple VMs in a DC as
    1 large VM, the global optimization results are proportionally
    chunked and distributed among workers."  Each worker receives a
    per-destination (min, max) window; sums across workers equal the
    DC-level window (within rounding, every worker keeps ≥ 1).
    """
    if num_vms < 1:
        raise ValueError(f"num_vms must be ≥ 1: {num_vms}")
    workers: list[dict[str, tuple[int, int]]] = [
        {} for _ in range(num_vms)
    ]
    for dst in plan.keys:
        if dst == dc:
            continue
        lo, hi = plan.connection_window(dc, dst)
        lo_split = _proportional_chunks(lo, num_vms)
        hi_split = _proportional_chunks(hi, num_vms)
        for w in range(num_vms):
            workers[w][dst] = (
                max(1, lo_split[w]), max(1, hi_split[w])
            )
    return workers


def _proportional_chunks(total: int, parts: int) -> list[int]:
    """Split ``total`` into ``parts`` near-equal non-negative integers.

    >>> _proportional_chunks(8, 3)
    [3, 3, 2]
    """
    base = total // parts
    remainder = total % parts
    return [base + (1 if i < remainder else 0) for i in range(parts)]
