"""WAN Prediction Model (§3.1, §4.1.1) with staleness handling (§3.3.4).

A Random Forest regressor maps Table 3 feature rows to stable runtime
BWs.  ``predict_matrix`` turns one cheap snapshot report into a full
runtime BW matrix — the artifact existing GDA systems consume in place
of their static-independent iPerf numbers.

Staleness: ``track_error`` intermittently compares predictions against
actual runtime values; once the rolling error exceeds the configured
threshold the ``needs_retraining`` flag latches (the paper uses a
log-based flag), and ``retrain`` extends the forest with warm start on
the additionally collected rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dataset import TrainingSet
from repro.core.features import report_feature_rows
from repro.ml.forest import RandomForestRegressor
from repro.ml.metrics import training_accuracy
from repro.net.matrix import BandwidthMatrix
from repro.net.measurement import MeasurementReport
from repro.net.topology import Topology

#: The paper settles on 100 estimators (§5.1).
DEFAULT_ESTIMATORS = 100

#: Significance boundary used throughout the paper (Mbps).
SIGNIFICANT_MBPS = 100.0


@dataclass
class WanPredictionModel:
    """RF-backed runtime-BW predictor."""

    n_estimators: int = DEFAULT_ESTIMATORS
    max_depth: int | None = None
    error_threshold_mbps: float = SIGNIFICANT_MBPS
    error_window: int = 32
    random_state: int = 13
    forest: RandomForestRegressor = field(init=False, repr=False)
    needs_retraining: bool = field(default=False, init=False)
    _errors: list[float] = field(default_factory=list, init=False, repr=False)
    _train_accuracy: float | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        self.forest = RandomForestRegressor(
            n_estimators=self.n_estimators,
            max_depth=self.max_depth,
            max_features="sqrt",
            warm_start=True,
            random_state=self.random_state,
        )

    def fit(self, training: TrainingSet) -> "WanPredictionModel":
        """Train on the collected dataset; records training accuracy."""
        self.forest.fit(training.X, training.y)
        preds = self.forest.predict(training.X)
        self._train_accuracy = training_accuracy(training.y, preds)
        self.needs_retraining = False
        self._errors.clear()
        return self

    @property
    def train_accuracy(self) -> float:
        """Training accuracy percentage (the paper quotes 98.51%)."""
        if self._train_accuracy is None:
            raise RuntimeError("model is not fitted")
        return self._train_accuracy

    @property
    def feature_importances(self) -> np.ndarray:
        """Normalized feature importances in Table 3 order."""
        return self.forest.feature_importances_

    def predict_rows(self, X: np.ndarray) -> np.ndarray:
        """Predict runtime BW for raw feature rows."""
        return np.maximum(0.0, self.forest.predict(X))

    def predict_matrix(
        self, report: MeasurementReport, topology: Topology
    ) -> BandwidthMatrix:
        """Predict the full runtime BW matrix from one snapshot report."""
        pairs, rows = report_feature_rows(report, topology)
        preds = self.predict_rows(rows)
        out = BandwidthMatrix.zeros(topology.keys)
        for (src, dst), value in zip(pairs, preds):
            out.set(src, dst, float(value))
        return out

    # ------------------------------------------------------------------
    # Staleness (§3.3.4)
    # ------------------------------------------------------------------

    def track_error(
        self, predicted: BandwidthMatrix, actual: BandwidthMatrix
    ) -> float:
        """Record one predicted-vs-actual comparison; returns mean |err|.

        Latches :attr:`needs_retraining` when the rolling mean error
        exceeds the threshold.
        """
        if actual.keys != predicted.keys:
            actual = actual.subset(predicted.keys)
        err = float(
            np.abs(predicted.off_diagonal() - actual.off_diagonal()).mean()
        )
        self._errors.append(err)
        if len(self._errors) > self.error_window:
            del self._errors[: len(self._errors) - self.error_window]
        if np.mean(self._errors) > self.error_threshold_mbps:
            self.needs_retraining = True
        return err

    def retrain(
        self, additional: TrainingSet, extra_estimators: int = 20
    ) -> "WanPredictionModel":
        """Warm-start retraining on additionally collected data."""
        self.forest.n_estimators = len(self.forest.trees) + extra_estimators
        self.forest.fit(additional.X, additional.y)
        preds = self.forest.predict(additional.X)
        self._train_accuracy = training_accuracy(additional.y, preds)
        self.needs_retraining = False
        self._errors.clear()
        return self
