"""Bandwidth Analyzer — the offline collection sub-module (§4.1.1).

"Bandwidth Analyzer starts VMs in the configured regions and gathers BW
information.  It generates datasets to be used for training the WAN
Prediction Model."  Here it drives the measurement layer over a
simulated collection horizon, tracks what the collection cost (Table 2's
'Model Training' column prices exactly this), and hands a
:class:`~repro.core.dataset.TrainingSet` to the predictor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.pricing import PriceBook
from repro.core.dataset import TrainingSet, WEEK_S, build_training_set
from repro.net.dynamics import FluctuationModel
from repro.net.measurement import (
    SNAPSHOT_WINDOW_S,
    STABLE_WINDOW_S,
    PROBE_VM,
)
from repro.net.topology import Topology


@dataclass
class CollectionCost:
    """Cost of an offline collection campaign."""

    instance_seconds: float = 0.0
    gigabytes: float = 0.0
    dollars: float = 0.0


@dataclass
class BandwidthAnalyzer:
    """Collects paired (snapshot, stable-runtime) BW observations.

    ``n_datasets`` is the number of (time, cluster-subset) combinations;
    the paper collected 600 over a week for various cluster sizes.
    """

    topology: Topology
    fluctuation: FluctuationModel
    n_datasets: int = 120
    cluster_sizes: tuple[int, ...] | None = None
    seed: int = 11
    horizon_s: float = WEEK_S
    prices: PriceBook = field(default_factory=PriceBook)
    last_cost: CollectionCost = field(default_factory=CollectionCost)

    def collect(self) -> TrainingSet:
        """Run the campaign and return the training set."""
        training = build_training_set(
            self.topology,
            self.fluctuation,
            n_datasets=self.n_datasets,
            cluster_sizes=self.cluster_sizes,
            seed=self.seed,
            horizon_s=self.horizon_s,
        )
        self.last_cost = self._campaign_cost(training)
        return training

    def _campaign_cost(self, training: TrainingSet) -> CollectionCost:
        """Price the campaign: every dataset runs a snapshot probe plus a
        stable-runtime probe on its cluster subset."""
        instance_seconds = 0.0
        gigabytes = 0.0
        # Group rows back into datasets via their recorded cluster sizes:
        # rows from one dataset share a sample time.
        seen: dict[float, int] = {}
        for t, size in zip(training.sample_times, training.cluster_sizes):
            seen[t] = size
        for size in seen.values():
            window = SNAPSHOT_WINDOW_S + STABLE_WINDOW_S
            instance_seconds += size * window
        # Probe traffic: approximate with the recorded target BWs — each
        # row's pair carried ~y Mbps for the stable window and ~S_BWij
        # for the snapshot window.
        snapshot_mbits = float(training.X[:, 1].sum()) * SNAPSHOT_WINDOW_S
        stable_mbits = float(training.y.sum()) * STABLE_WINDOW_S
        gigabytes = (snapshot_mbits + stable_mbits) / 8.0 / 1024.0
        dollars = (
            self.prices.compute_cost(PROBE_VM, instance_seconds)
            + self.prices.network_cost(gigabytes)
        )
        return CollectionCost(instance_seconds, gigabytes, dollars)
