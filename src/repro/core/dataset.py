"""Training-set construction for the WAN Prediction Model.

The paper's Bandwidth Analyzer ran "at different times over a week" and,
"for various cluster sizes", collected 600 datasets each pairing
(1) short-duration snapshot BWs (plus the Table 3 features) with
(2) dynamically measured (stable runtime) BWs (§5.1).  Each *dataset*
here is one (time, cluster-subset) combination; each ordered DC pair in
it contributes one row.

Serialization is plain ``npz`` + a JSON sidecar of pair labels, so the
collected data can be shipped like the paper's open-sourced datasets.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.features import FEATURE_NAMES, report_feature_rows
from repro.net.dynamics import FluctuationModel
from repro.net.measurement import snapshot, stable_runtime
from repro.net.topology import Topology

#: A simulated week, the paper's collection horizon.
WEEK_S = 7 * 24 * 3600.0


@dataclass
class TrainingSet:
    """Feature matrix ``X`` (n × 6), targets ``y`` (stable runtime Mbps),
    and per-row bookkeeping for later analysis."""

    X: np.ndarray
    y: np.ndarray
    pair_labels: list[tuple[str, str]] = field(default_factory=list)
    sample_times: list[float] = field(default_factory=list)
    cluster_sizes: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.X = np.asarray(self.X, dtype=float)
        self.y = np.asarray(self.y, dtype=float)
        if len(self.X) != len(self.y):
            raise ValueError(
                f"X has {len(self.X)} rows but y has {len(self.y)}"
            )

    def __len__(self) -> int:
        return len(self.y)

    def merge(self, other: "TrainingSet") -> "TrainingSet":
        """Concatenate two training sets (used for retraining)."""
        return TrainingSet(
            np.vstack([self.X, other.X]),
            np.concatenate([self.y, other.y]),
            self.pair_labels + other.pair_labels,
            self.sample_times + other.sample_times,
            self.cluster_sizes + other.cluster_sizes,
        )

    def target_std(self) -> float:
        """SD of the stable runtime BWs (paper reports ~184 Mbps)."""
        return float(self.y.std())

    def save(self, path: str | Path) -> None:
        """Write to ``path`` (.npz) with a JSON sidecar of labels."""
        path = Path(path)
        np.savez_compressed(
            path,
            X=self.X,
            y=self.y,
            sample_times=np.array(self.sample_times),
            cluster_sizes=np.array(self.cluster_sizes),
        )
        sidecar = path.with_suffix(".labels.json")
        sidecar.write_text(json.dumps(self.pair_labels))

    @classmethod
    def load(cls, path: str | Path) -> "TrainingSet":
        """Read a training set written by :meth:`save`."""
        path = Path(path)
        data = np.load(path if path.suffix else path.with_suffix(".npz"))
        sidecar = path.with_suffix(".labels.json")
        labels = [
            (a, b) for a, b in json.loads(sidecar.read_text())
        ] if sidecar.exists() else []
        return cls(
            data["X"],
            data["y"],
            labels,
            list(map(float, data["sample_times"])),
            list(map(int, data["cluster_sizes"])),
        )

    def to_csv(self, path: str | Path) -> None:
        """Write the set as one flat CSV (the interchange format of the
        paper's open-sourced datasets [5]).

        Columns: ``src, dst, sample_time_s, <Table 3 features>,
        runtime_bw_mbps``.  Row order is preserved, so
        :meth:`from_csv` round-trips exactly (modulo float formatting).
        """
        path = Path(path)
        header = ["src", "dst", "sample_time_s", *FEATURE_NAMES,
                  "runtime_bw_mbps"]
        lines = [",".join(header)]
        labels = self.pair_labels or [("", "")] * len(self)
        times = self.sample_times or [0.0] * len(self)
        for (src, dst), t, x, target in zip(labels, times, self.X, self.y):
            cells = [src, dst, repr(float(t))]
            cells.extend(repr(float(v)) for v in x)
            cells.append(repr(float(target)))
            lines.append(",".join(cells))
        path.write_text("\n".join(lines) + "\n")

    @classmethod
    def from_csv(cls, path: str | Path) -> "TrainingSet":
        """Read a CSV written by :meth:`to_csv` (or hand-collected data
        in the same column layout)."""
        path = Path(path)
        lines = path.read_text().strip().splitlines()
        if not lines:
            raise ValueError(f"{path} is empty")
        header = lines[0].split(",")
        expected = ["src", "dst", "sample_time_s", *FEATURE_NAMES,
                    "runtime_bw_mbps"]
        if header != expected:
            raise ValueError(
                f"unexpected CSV header {header}; expected {expected}"
            )
        labels: list[tuple[str, str]] = []
        times: list[float] = []
        xs: list[list[float]] = []
        ys: list[float] = []
        sizes: list[int] = []
        for lineno, line in enumerate(lines[1:], start=2):
            cells = line.split(",")
            if len(cells) != len(expected):
                raise ValueError(
                    f"{path}:{lineno}: {len(cells)} cells, "
                    f"expected {len(expected)}"
                )
            labels.append((cells[0], cells[1]))
            times.append(float(cells[2]))
            features = [float(c) for c in cells[3:-1]]
            xs.append(features)
            ys.append(float(cells[-1]))
            sizes.append(int(features[0]))  # N is the first feature
        return cls(np.array(xs), np.array(ys), labels, times, sizes)


def build_training_set(
    topology: Topology,
    fluctuation: FluctuationModel,
    n_datasets: int = 120,
    cluster_sizes: tuple[int, ...] | None = None,
    seed: int = 11,
    horizon_s: float = WEEK_S,
) -> TrainingSet:
    """Collect ``n_datasets`` (time, cluster) samples as the paper did.

    Cluster subsets are drawn uniformly from ``cluster_sizes`` (default
    ``[2, Nmax]``, §3.3.2) over ``topology``'s DCs; times uniformly over
    a simulated week.  Snapshot features are inputs; stable runtime BWs
    are targets.
    """
    if n_datasets < 1:
        raise ValueError(f"n_datasets must be ≥ 1: {n_datasets}")
    if cluster_sizes is None:
        cluster_sizes = tuple(range(2, topology.n + 1))
    bad = [c for c in cluster_sizes if c < 2 or c > topology.n]
    if bad:
        raise ValueError(
            f"cluster sizes {bad} outside [2, {topology.n}]"
        )
    rng = np.random.default_rng(seed)
    all_keys = list(topology.keys)

    xs, ys = [], []
    labels: list[tuple[str, str]] = []
    times: list[float] = []
    sizes: list[int] = []
    for _ in range(n_datasets):
        size = int(rng.choice(cluster_sizes))
        keys = list(rng.choice(all_keys, size=size, replace=False))
        sub = topology.subset(keys)
        at_time = float(rng.uniform(0.0, horizon_s))
        snap = snapshot(sub, fluctuation, at_time)
        stable = stable_runtime(sub, fluctuation, at_time)
        pairs, rows = report_feature_rows(snap, sub)
        targets = np.array([stable.matrix.get(s, d) for s, d in pairs])
        xs.append(rows)
        ys.append(targets)
        labels.extend(pairs)
        times.extend([at_time] * len(pairs))
        sizes.extend([size] * len(pairs))

    X = np.vstack(xs)
    y = np.concatenate(ys)
    assert X.shape[1] == len(FEATURE_NAMES)
    return TrainingSet(X, y, labels, times, sizes)
