"""Throttling BW-rich pairs (§3.2.2, "Throttling BW").

"To ensure that nearby DCs do not consume the bulk of the available
network ... local optimization also employs throttling, which limits the
maximum achievable BW between nearby DCs.  It first computes the
threshold (T) for determining BW-rich DCs from a source DC by taking the
mean of achievable BWs from that region.  Next, for destination DCs with
achievable BWs > T, it uses Traffic Control (TC) to limit their
achievable BWs to T."
"""

from __future__ import annotations

import numpy as np

from repro.core.globalopt import GlobalPlan
from repro.net.traffic_control import TrafficController

#: Headroom above the mean reference BW before a pair is considered
#: BW-rich.  Pure mean-capping over-throttles when the mean sits at the
#: per-pair fair share (it caps pairs at exactly the balanced rate and
#: leaves no slack for reclaiming capacity weak pairs cannot absorb);
#: 1.5× keeps the caps binding for genuinely rich pairs only.
THROTTLE_HEADROOM = 1.5


def throttle_threshold(plan: GlobalPlan, src: str) -> float:
    """The mean achievable BW from ``src`` to every other DC.

    The reference scale is the plan's *minimum-configuration* BW (the
    predicted runtime BW at the window's minimum connection count): the
    point of throttling is to stop BW-rich nearby pairs from out-competing
    the weak pairs at their *contended* rates, so the threshold must sit
    on the contended-rate scale rather than the fully-parallelized
    optimistic maximum.
    """
    values = [
        plan.min_bw.get(src, dst) for dst in plan.keys if dst != src
    ]
    if not values:
        raise ValueError(f"plan has no destinations for {src!r}")
    return float(np.mean(values))


def apply_throttles(
    plan: GlobalPlan,
    tc: TrafficController,
    src: str,
    headroom: float = THROTTLE_HEADROOM,
) -> dict[str, float]:
    """Install TC caps at the threshold for BW-rich pairs from ``src``.

    Returns the map of throttled destinations → cap (Mbps).
    """
    if headroom < 1.0:
        raise ValueError(f"headroom must be ≥ 1: {headroom}")
    threshold = throttle_threshold(plan, src) * headroom
    applied: dict[str, float] = {}
    for dst in plan.keys:
        if dst == src:
            continue
        if plan.min_bw.get(src, dst) > threshold:
            tc.set_limit(src, dst, threshold)
            applied[dst] = threshold
        else:
            tc.clear_limit(src, dst)
    return applied


def clear_throttles(
    plan: GlobalPlan, tc: TrafficController, src: str
) -> None:
    """Remove any caps previously applied for ``src``."""
    for dst in plan.keys:
        if dst != src:
            tc.clear_limit(src, dst)
