"""Connections Manager (§4.1.3).

"The optimal configurations are fed into Connections Manager, which
adds/removes the required connections from the active connection pool."
In the simulator the pool is the per-pair connection count the network
uses for weights and caps; the manager reconciles the desired counts
against it and reports churn (tests assert adds/removes are minimal).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.simulator import NetworkSimulator


@dataclass
class PoolDelta:
    """Connections added/removed in one reconciliation."""

    added: int = 0
    removed: int = 0


@dataclass
class ConnectionsManager:
    """Reconciles desired connection counts with the network's pool."""

    network: NetworkSimulator
    src: str
    total_added: int = 0
    total_removed: int = 0
    _log: list[tuple[float, str, int, int]] = field(default_factory=list)

    def apply(self, desired: dict[str, int]) -> PoolDelta:
        """Set per-destination counts; returns the aggregate churn."""
        delta = PoolDelta()
        for dst, count in desired.items():
            if dst == self.src:
                continue
            if count < 1:
                raise ValueError(
                    f"connection count must be ≥ 1: {count} for {dst}"
                )
            current = self.network.connections(self.src, dst)
            if count == current:
                continue
            if count > current:
                delta.added += count - current
            else:
                delta.removed += current - count
            self.network.set_connections(self.src, dst, count)
            self._log.append(
                (self.network.sim.now, dst, current, count)
            )
        self.total_added += delta.added
        self.total_removed += delta.removed
        return delta

    @property
    def churn_log(self) -> list[tuple[float, str, int, int]]:
        """(time, dst, old, new) for every pool change."""
        return list(self._log)
