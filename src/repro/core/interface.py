"""WANify Interface (§4.1) — the facade GDA systems invoke.

Typical use, mirroring Fig. 3's architecture::

    wanify = WANify(topology, fluctuation)
    wanify.train()                                  # offline module
    bw = wanify.predict_runtime_bw(at_time=t)       # online: RF + snapshot
    plan = wanify.make_plan(bw)                     # global optimizer
    deployment = wanify.deployment("wanify-tc", bw) # agents + throttles

The named variants reproduce the evaluation's baselines:

=================  ====================================================
variant            meaning (paper section)
=================  ====================================================
``single``         predicted BW only, single connection (§5.2)
``wanify-p``       uniform parallel connections (§5.3.1)
``wanify-dynamic`` heterogeneous connections + AIMD agents, no
                   throttling (§5.3.1)
``wanify-tc``      the default: heterogeneous + AIMD + TC throttling
``global-only``    global optimizer output applied statically (§5.5)
``local-only``     AIMD within a static 1–8 window (§5.5)
=================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.agent import LocalAgent, deploy_agents
from repro.core.analyzer import BandwidthAnalyzer
from repro.core.globalopt import (
    DEFAULT_MAX_CONNECTIONS,
    GlobalPlan,
    optimize_connections,
    static_range_plan,
    uniform_plan,
)
from repro.core.predictor import WanPredictionModel
from repro.core.throttle import apply_throttles
from repro.net.dynamics import FluctuationModel, StaticModel
from repro.net.matrix import BandwidthMatrix
from repro.net.measurement import MeasurementReport, snapshot
from repro.net.simulator import NetworkSimulator
from repro.net.topology import Topology

VARIANTS = (
    "single",
    "wanify-p",
    "wanify-dynamic",
    "wanify-tc",
    "global-only",
    "local-only",
)


@dataclass(frozen=True)
class WANifyConfig:
    """Tunables for the whole pipeline (defaults follow the paper)."""

    max_connections: int = DEFAULT_MAX_CONNECTIONS
    min_difference_mbps: float = 100.0
    n_training_datasets: int = 120
    n_estimators: int = 100
    seed: int = 13


@dataclass
class WANifyDeployment:
    """What to install on a network before running a query."""

    variant: str
    plan: Optional[GlobalPlan]
    agents: bool
    throttling: bool
    agents_running: list[LocalAgent] = field(default_factory=list)
    #: Agents stopped by teardown, kept for post-run inspection (the
    #: Fig. 9 analysis reads their AIMD epoch histories).
    retired_agents: list[LocalAgent] = field(default_factory=list)

    def install(self, network: NetworkSimulator) -> None:
        """Apply connection counts / throttles / agents to the network."""
        if self.plan is None:
            return
        if self.agents:
            # Agents set their own initial (max) counts and throttles.
            self.agents_running = deploy_agents(
                network, self.plan, throttling=self.throttling
            )
            return
        plan = self.plan
        if self.variant == "global-only":
            # Without local agents there is no AIMD to back off from the
            # optimistic maximum, so a static deployment pins the
            # window's midpoint — the sustainable configuration.
            counts = plan.max_connections.copy()
            counts.values = np.ceil(
                (plan.min_connections.values + plan.max_connections.values)
                / 2.0
            )
        else:
            counts = plan.max_connections.copy()
        counts.values[counts.values < 1] = 1
        network.set_connection_plan(counts)
        if self.throttling:
            for src in plan.keys:
                apply_throttles(plan, network.tc, src)

    def teardown(self, network: NetworkSimulator) -> None:
        """Stop agents and clear throttles (agents stay inspectable)."""
        for agent in self.agents_running:
            agent.stop()
        self.retired_agents.extend(self.agents_running)
        self.agents_running = []
        network.tc.clear_all()


class WANify:
    """End-to-end WANify: offline training + online optimization."""

    def __init__(
        self,
        topology: Topology,
        fluctuation: FluctuationModel | StaticModel | None = None,
        config: WANifyConfig = WANifyConfig(),
    ) -> None:
        self.topology = topology
        self.fluctuation = (
            fluctuation if fluctuation is not None else StaticModel()
        )
        self.config = config
        self.predictor = WanPredictionModel(
            n_estimators=config.n_estimators, random_state=config.seed
        )
        self.analyzer = BandwidthAnalyzer(
            topology,
            self.fluctuation
            if isinstance(self.fluctuation, FluctuationModel)
            else FluctuationModel(seed=config.seed),
            n_datasets=config.n_training_datasets,
            seed=config.seed,
        )
        self._trained = False

    # ------------------------------------------------------------------
    # Offline module
    # ------------------------------------------------------------------

    def train(self) -> dict[str, float]:
        """Collect datasets and fit the prediction model.

        Returns a summary: rows, target SD (paper: ~184 Mbps), training
        accuracy (paper: 98.51%), and collection cost in dollars.
        """
        training = self.analyzer.collect()
        self.predictor.fit(training)
        self._trained = True
        return {
            "rows": float(len(training)),
            "target_std_mbps": training.target_std(),
            "train_accuracy_pct": self.predictor.train_accuracy,
            "collection_cost_usd": self.analyzer.last_cost.dollars,
        }

    @property
    def is_trained(self) -> bool:
        """Whether the prediction model has been fitted."""
        return self._trained

    # ------------------------------------------------------------------
    # Online module
    # ------------------------------------------------------------------

    def snapshot_report(self, at_time: float = 0.0) -> MeasurementReport:
        """Take a 1-second snapshot of the current network state."""
        return snapshot(self.topology, self.fluctuation, at_time)

    def predict_runtime_bw(
        self,
        at_time: float = 0.0,
        report: Optional[MeasurementReport] = None,
        topology: Optional[Topology] = None,
    ) -> BandwidthMatrix:
        """Snapshot (or use ``report``) and predict stable runtime BWs.

        ``topology`` may be a subset of the training topology — the model
        is trained across cluster sizes (§3.3.2).
        """
        if not self._trained:
            raise RuntimeError("call train() before predicting")
        topology = topology or self.topology
        if report is None:
            report = snapshot(topology, self.fluctuation, at_time)
        return self.predictor.predict_matrix(report, topology)

    def make_plan(
        self,
        bw: BandwidthMatrix,
        skew_weights: Optional[dict[str, float]] = None,
        rvec: Optional[dict[str, float]] = None,
    ) -> GlobalPlan:
        """Global optimization on a (predicted) runtime BW matrix."""
        return optimize_connections(
            bw,
            max_connections=self.config.max_connections,
            min_difference=self.config.min_difference_mbps,
            skew_weights=skew_weights,
            rvec=rvec,
        )

    def deployment(
        self,
        variant: str,
        bw: Optional[BandwidthMatrix] = None,
        at_time: float = 0.0,
        skew_weights: Optional[dict[str, float]] = None,
        rvec: Optional[dict[str, float]] = None,
    ) -> WANifyDeployment:
        """Build a deployment for one of the named evaluation variants."""
        if variant not in VARIANTS:
            raise ValueError(
                f"unknown variant {variant!r}; choose from {VARIANTS}"
            )
        if variant == "single":
            return WANifyDeployment(variant, None, False, False)
        if bw is None:
            bw = self.predict_runtime_bw(at_time)
        if variant == "wanify-p":
            plan = uniform_plan(bw, self.config.max_connections)
            return WANifyDeployment(variant, plan, False, False)
        if variant == "local-only":
            plan = static_range_plan(
                bw, 1, self.config.max_connections
            )
            return WANifyDeployment(variant, plan, True, True)
        plan = self.make_plan(bw, skew_weights, rvec)
        if variant == "global-only":
            return WANifyDeployment(variant, plan, False, False)
        if variant == "wanify-dynamic":
            return WANifyDeployment(variant, plan, True, False)
        return WANifyDeployment(variant, plan, True, True)
