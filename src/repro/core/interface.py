"""WANify Interface (§4.1) — the legacy facade, now a thin shim.

.. deprecated::
    The public API moved to :mod:`repro.pipeline`.  :class:`WANify` is
    a back-compat subclass of :class:`repro.pipeline.Pipeline` that
    keeps the original spellings working (``predict_runtime_bw`` →
    ``predict``, ``make_plan`` → ``plan``, ``snapshot_report`` →
    ``gauge``) and emits a :class:`DeprecationWarning` on
    construction.  New code composes the pipeline directly::

        from repro.pipeline import Pipeline

        pipe = Pipeline(topology, fluctuation)
        pipe.train()                                  # offline module
        bw = pipe.predict(at_time=t)                  # online: RF + snapshot
        plan = pipe.plan(bw)                          # global optimizer
        deployment = pipe.deployment("wanify-tc", bw) # agents + throttles

The named variants reproduce the evaluation's baselines:

=================  ====================================================
variant            meaning (paper section)
=================  ====================================================
``single``         predicted BW only, single connection (§5.2)
``wanify-p``       uniform parallel connections (§5.3.1)
``wanify-dynamic`` heterogeneous connections + AIMD agents, no
                   throttling (§5.3.1)
``wanify-tc``      the default: heterogeneous + AIMD + TC throttling
``global-only``    global optimizer output applied statically (§5.5)
``local-only``     AIMD within a static 1–8 window (§5.5)
=================  ====================================================

New variants register via ``@repro.pipeline.register_variant`` and are
immediately constructible here too — :data:`VARIANTS` is a snapshot of
the built-ins kept for legacy imports.
"""

from __future__ import annotations

import warnings
from typing import Optional

from repro.core.globalopt import GlobalPlan
from repro.net.dynamics import FluctuationModel, StaticModel
from repro.net.matrix import BandwidthMatrix
from repro.net.measurement import MeasurementReport
from repro.net.topology import Topology
from repro.pipeline.config import PipelineConfig
from repro.pipeline.core import Pipeline
from repro.pipeline.deploy import Deployment, WANifyDeployment  # noqa: F401
from repro.pipeline.registry import variant_registry

#: Snapshot of the built-in variant names (legacy import surface; the
#: live source of truth is ``repro.pipeline.variant_registry``).
VARIANTS = variant_registry.names()


class WANifyConfig(PipelineConfig):
    """Legacy spelling of :class:`repro.pipeline.PipelineConfig`."""


class WANify(Pipeline):
    """Deprecated facade — use :class:`repro.pipeline.Pipeline`.

    Keeps the PR-0 constructor and method spellings intact for existing
    callers and tests; everything delegates to the composed pipeline.
    """

    def __init__(
        self,
        topology: Topology,
        fluctuation: FluctuationModel | StaticModel | None = None,
        config: Optional[PipelineConfig] = None,
    ) -> None:
        warnings.warn(
            "WANify is deprecated; use repro.pipeline.Pipeline "
            "(predict_runtime_bw→predict, make_plan→plan, "
            "snapshot_report→gauge)",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(topology, fluctuation, config)

    @property
    def fluctuation(self):
        """Legacy name for the pipeline's weather model."""
        return self.weather

    @property
    def analyzer(self):
        """Legacy name for the default predictor's Bandwidth Analyzer."""
        return self.predictor.analyzer

    def snapshot_report(self, at_time: float = 0.0) -> MeasurementReport:
        """Take a 1-second snapshot of the current network state."""
        return self.gauge(at_time=at_time)

    def predict_runtime_bw(
        self,
        at_time: float = 0.0,
        report: Optional[MeasurementReport] = None,
        topology: Optional[Topology] = None,
    ) -> BandwidthMatrix:
        """Legacy spelling of :meth:`repro.pipeline.Pipeline.predict`."""
        return self.predict(at_time=at_time, report=report, topology=topology)

    def make_plan(
        self,
        bw: BandwidthMatrix,
        skew_weights: Optional[dict[str, float]] = None,
        rvec: Optional[dict[str, float]] = None,
    ) -> GlobalPlan:
        """Legacy spelling of :meth:`repro.pipeline.Pipeline.plan`."""
        return self.plan(bw, skew_weights=skew_weights, rvec=rvec)
