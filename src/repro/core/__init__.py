"""WANify — the paper's primary contribution.

* offline: :mod:`repro.core.features`, :mod:`repro.core.dataset`,
  :mod:`repro.core.analyzer`, :mod:`repro.core.predictor` — the
  Bandwidth Analyzer and WAN Prediction Model (§3.1, §4.1.1);
* online: :mod:`repro.core.relations` (Algorithm 1),
  :mod:`repro.core.globalopt` (Eq. 2/3), and
  :mod:`repro.core.throttle` — the Global Optimizer (§3.2.1, §4.1.2);
* agents: :mod:`repro.core.localopt` (AIMD), :mod:`repro.core.agent`,
  :mod:`repro.core.connections` — the per-VM Local Agent (§3.2.2,
  §4.1.3);
* :mod:`repro.core.heterogeneity` — skew weights, refactoring vector,
  association (§3.3);
* :mod:`repro.core.interface` — the WANify Interface any GDA system
  calls (§4.1).
"""

from repro.core.analyzer import BandwidthAnalyzer
from repro.core.dataset import TrainingSet, build_training_set
from repro.core.features import FEATURE_NAMES, pair_feature_vector
from repro.core.globalopt import GlobalPlan, optimize_connections
from repro.core.interface import WANify, WANifyConfig
from repro.core.localopt import AimdState, LocalOptimizer
from repro.core.predictor import WanPredictionModel
from repro.core.relations import infer_dc_relations

__all__ = [
    "AimdState",
    "BandwidthAnalyzer",
    "FEATURE_NAMES",
    "GlobalPlan",
    "LocalOptimizer",
    "TrainingSet",
    "WANify",
    "WANifyConfig",
    "WanPredictionModel",
    "build_training_set",
    "infer_dc_relations",
    "optimize_connections",
    "pair_feature_vector",
]
