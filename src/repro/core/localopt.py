"""Dynamic local optimization — AIMD fine-tuning (§3.2.2).

Each VM runs a local optimizer per destination DC.  Targets start at the
*maximum* of the global optimizer's window ("the initial state ... begins
from maximum throughput and gradually reduces with congestion, thereby
reducing the RTT bias"), then every epoch (5 s):

* **multiplicative decrease** when the monitored BW is significantly
  (> 100 Mbps) below the target — congestion: connections and target BW
  drop to ``max(minimum, previous/2)``;
* **additive increase** when monitored ≈ target — the network has head
  room: connections += 1 and the target BW grows linearly
  (``predicted per-connection BW × connections``), up to the maximum;
* pairs that moved < 1 MB since the last epoch skip the toggle entirely
  (their monitored rate says nothing about the network).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: The paper's significance boundary, Mbps.
CONGESTION_DELTA_MBPS = 100.0

#: "similar" band for entering additive-increase mode, Mbps.
SIMILARITY_BAND_MBPS = 100.0

#: AIMD epoch: "a 5-second interval at which the local optimizer updates
#: the target BWs" (§5.7).
EPOCH_S = 5.0

#: Minimum per-epoch transferred volume for mode toggles (§3.2.2).
MIN_TRANSFER_MB = 1.0


@dataclass
class AimdState:
    """Per-destination AIMD state within the global window."""

    min_connections: int
    max_connections: int
    min_bw: float
    max_bw: float
    per_connection_bw: float
    connections: int = field(default=0)
    target_bw: float = field(default=0.0)
    mode: str = field(default="steady")

    def __post_init__(self) -> None:
        if self.min_connections > self.max_connections:
            raise ValueError(
                f"window inverted: {self.min_connections} > "
                f"{self.max_connections}"
            )
        if self.connections == 0:
            self.connections = self.max_connections
        if self.target_bw == 0.0:
            self.target_bw = self.max_bw

    def decrease(self) -> None:
        """Multiplicative decrease: half or window minimum, whichever is
        higher."""
        self.connections = max(self.min_connections, self.connections // 2)
        self.target_bw = max(self.min_bw, self.target_bw / 2.0)
        self.mode = "decrease"

    def increase(self) -> None:
        """Additive increase: one more connection, linear BW growth."""
        self.connections = min(self.max_connections, self.connections + 1)
        self.target_bw = min(
            self.max_bw, self.per_connection_bw * self.connections
        )
        self.mode = "increase"

    def hold(self) -> None:
        """No change this epoch."""
        self.mode = "steady"


@dataclass
class EpochRecord:
    """One epoch's observation for one destination (Fig. 9 data)."""

    time: float
    dst: str
    monitored_mbps: float
    target_mbps: float
    connections: int
    mode: str


class LocalOptimizer:
    """AIMD controller for one source DC toward all destinations."""

    def __init__(
        self,
        src: str,
        windows: dict[str, AimdState],
        congestion_delta: float = CONGESTION_DELTA_MBPS,
        similarity_band: float = SIMILARITY_BAND_MBPS,
        min_transfer_mb: float = MIN_TRANSFER_MB,
    ) -> None:
        self.src = src
        self.states = windows
        self.congestion_delta = congestion_delta
        self.similarity_band = similarity_band
        self.min_transfer_mb = min_transfer_mb
        self.history: list[EpochRecord] = []

    @classmethod
    def from_plan(cls, src: str, plan: "GlobalPlan") -> "LocalOptimizer":
        """Build states for every destination from a global plan."""
        from repro.core.globalopt import GlobalPlan  # noqa: F401 (typing)

        states: dict[str, AimdState] = {}
        for dst in plan.keys:
            if dst == src:
                continue
            lo_c, hi_c = plan.connection_window(src, dst)
            lo_b, hi_b = plan.bw_window(src, dst)
            per_conn = hi_b / hi_c if hi_c > 0 else 0.0
            states[dst] = AimdState(
                min_connections=lo_c,
                max_connections=hi_c,
                min_bw=lo_b,
                max_bw=hi_b,
                per_connection_bw=per_conn,
            )
        return cls(src, states)

    def epoch(
        self,
        now: float,
        monitored_mbps: dict[str, float],
        window_volume_mb: dict[str, float] | None = None,
    ) -> dict[str, int]:
        """Run one AIMD epoch; returns the new per-destination counts.

        ``monitored_mbps`` is the ifTop-style reading per destination;
        ``window_volume_mb`` the data moved since the previous epoch
        (None → assume large, i.e. always eligible).
        """
        decisions: dict[str, int] = {}
        for dst, state in self.states.items():
            monitored = monitored_mbps.get(dst, 0.0)
            volume = (
                window_volume_mb.get(dst, float("inf"))
                if window_volume_mb is not None
                else float("inf")
            )
            if volume < self.min_transfer_mb:
                state.hold()
            elif state.target_bw - monitored > self.congestion_delta:
                state.decrease()
            elif (
                monitored > 0.0
                and monitored >= state.target_bw - self.similarity_band
            ):
                # "Similar" requires a live link: a dead link sitting
                # exactly at the window floor is not improved headroom.
                state.increase()
            else:
                state.hold()
            decisions[dst] = state.connections
            self.history.append(
                EpochRecord(
                    now, dst, monitored, state.target_bw,
                    state.connections, state.mode,
                )
            )
        return decisions

    def targets(self) -> dict[str, float]:
        """Current target BW per destination."""
        return {dst: s.target_bw for dst, s in self.states.items()}

    def connection_counts(self) -> dict[str, int]:
        """Current connection count per destination."""
        return {dst: s.connections for dst, s in self.states.items()}
