"""Local Agent (§4.1.3): WAN Monitor + Local Optimizer + Connections
Manager, wired together as a periodic process on each DC's VM.

Every AIMD epoch the agent reads the monitor's latest rates, runs one
optimizer step, applies the resulting connection counts to the pool, and
(for the default WANify-TC mode) refreshes the throttles on BW-rich
destinations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.connections import ConnectionsManager
from repro.core.globalopt import GlobalPlan
from repro.core.localopt import EPOCH_S, LocalOptimizer
from repro.core.throttle import apply_throttles
from repro.net.monitor import SampleSink, WanMonitor
from repro.net.simulator import NetworkSimulator
from repro.sim.kernel import Process


@dataclass
class LocalAgent:
    """One DC's WANify agent.

    ``telemetry`` is any :data:`~repro.net.monitor.SampleSink` — in the
    runtime service it is the shared
    :class:`~repro.runtime.telemetry.TelemetryStore`, so the cluster's
    drift detector sees what every agent's monitor sees.
    """

    network: NetworkSimulator
    dc: str
    plan: GlobalPlan
    throttling: bool = True
    epoch_s: float = EPOCH_S
    telemetry: Optional[SampleSink] = None
    monitor: WanMonitor = field(init=False)
    optimizer: LocalOptimizer = field(init=False)
    manager: ConnectionsManager = field(init=False)
    _process: Process = field(init=False)

    def __post_init__(self) -> None:
        on_sample = (
            self.telemetry.record
            if hasattr(self.telemetry, "record")
            else self.telemetry
        )
        self.monitor = WanMonitor(
            self.network,
            self.dc,
            interval_s=self.epoch_s,
            on_sample=on_sample,
        )
        self.optimizer = LocalOptimizer.from_plan(self.dc, self.plan)
        self.manager = ConnectionsManager(self.network, self.dc)
        # Start at the window maximum immediately.
        self.manager.apply(self.optimizer.connection_counts())
        if self.throttling:
            applied = apply_throttles(self.plan, self.network.tc, self.dc)
            # A throttled pair's achievable BW *is* the cap — clip the
            # AIMD window so targets can actually be met (otherwise the
            # optimizer would chase a floor above its own tc limit).
            for dst, cap in applied.items():
                state = self.optimizer.states.get(dst)
                if state is None:
                    continue
                state.max_bw = min(state.max_bw, cap)
                state.min_bw = min(state.min_bw, cap)
                state.target_bw = min(state.target_bw, cap)
                state.per_connection_bw = min(
                    state.per_connection_bw, cap
                )
        self._process = Process(
            self.network.sim,
            self.epoch_s,
            self._epoch,
            start_delay=self.epoch_s,
            priority=3,
        )

    def _epoch(self, now: float) -> None:
        monitored = self.monitor.latest()
        if not monitored:
            return
        volumes = {
            dst: self.monitor.window_volume_mb(dst)
            for dst in monitored
        }
        decisions = self.optimizer.epoch(now, monitored, volumes)
        self.manager.apply(decisions)

    def stop(self) -> None:
        """Stop the agent's periodic process and monitor."""
        self._process.stop()
        self.monitor.stop()


def deploy_agents(
    network: NetworkSimulator,
    plan: GlobalPlan,
    throttling: bool = True,
    epoch_s: float = EPOCH_S,
    telemetry: Optional[SampleSink] = None,
) -> list[LocalAgent]:
    """Start one agent per DC in the plan; returns them for later stop().

    ``telemetry`` (a store or bare callable) is shared by every agent's
    monitor — the runtime service's cluster-wide sample feed.
    """
    return [
        LocalAgent(network, dc, plan, throttling, epoch_s, telemetry)
        for dc in plan.keys
    ]
