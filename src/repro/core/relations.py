"""Algorithm 1 — INFER_DC_RELATIONS.

Derives a *closeness index* per DC pair from a runtime BW matrix:
index 1 means "closest" (highest BW level), larger indices mean farther
(weaker) pairs.  The algorithm:

1. collect the unique BW values, sorted ascending;
2. walking from the top, drop any value within ``min_difference`` (the
   paper's ``D``) of its predecessor — this merges statistically
   indistinguishable levels;
3. assign each pair the index of its (nearest) surviving level, flipped
   so the highest level is index 1.

Worked example from the paper (§3.2.1): ``bw = [[1000, 400, 120],
[380, 1000, 130], [110, 120, 1000]]`` with ``D = 30`` filters the levels
to ``{110, 380, 1000}`` and yields closeness 1 for 1000, 2 for
{400, 380}, and 3 for {120, 130, 110}.

Deviation from the pseudocode as printed: the paper's loop bounds are
``for i = 1 to N/2`` which would only fill a quarter of the matrix (and
is impossible for odd N); we iterate over all cells, which is what the
worked example's output implies.
"""

from __future__ import annotations

import bisect

import numpy as np


def filter_levels(values: np.ndarray, min_difference: float) -> list[float]:
    """Unique BW levels with near-duplicates merged (lines 3–8).

    Traverses the sorted unique values from the top and removes any
    value closer than ``min_difference`` to its predecessor, keeping the
    *lower* of the two — exactly the paper's reverse traversal.

    >>> filter_levels(np.array([110, 120, 130, 380, 400, 1000]), 30)
    [110.0, 380.0, 1000.0]
    """
    if min_difference < 0:
        raise ValueError(f"min_difference must be ≥ 0: {min_difference}")
    unique = sorted(set(float(v) for v in np.asarray(values).ravel()))
    i = len(unique) - 1
    while i >= 1:
        if unique[i] - unique[i - 1] < min_difference:
            del unique[i]
        i -= 1
    return unique


def _nearest_level_index(value: float, levels: list[float]) -> int:
    """1-based index of the level nearest to ``value`` (lines 12–18)."""
    pos = bisect.bisect_left(levels, value)
    if pos < len(levels) and levels[pos] == value:
        return pos + 1
    # Interval case: pick whichever neighbour is closer (m1 vs m2).
    lo = max(0, pos - 1)
    hi = min(len(levels) - 1, pos)
    if abs(value - levels[lo]) <= abs(levels[hi] - value):
        return lo + 1
    return hi + 1


def infer_dc_relations(
    bw: np.ndarray, min_difference: float = 100.0
) -> np.ndarray:
    """Closeness-index matrix ``DCrel`` for a runtime BW matrix.

    ``bw`` must be square with the *intra-DC* BW on the diagonal (the
    paper's example uses the LAN rate there, which naturally lands on
    the highest level → closeness 1).

    >>> bw = np.array([[1000, 400, 120], [380, 1000, 130], [110, 120, 1000]])
    >>> infer_dc_relations(bw, 30).tolist()
    [[1, 2, 3], [2, 1, 3], [3, 3, 1]]
    """
    bw = np.asarray(bw, dtype=float)
    if bw.ndim != 2 or bw.shape[0] != bw.shape[1]:
        raise ValueError(f"bw must be square, got shape {bw.shape}")
    n = bw.shape[0]
    levels = filter_levels(bw, min_difference)
    n_levels = len(levels)
    rel = np.ones((n, n), dtype=int)
    for i in range(n):
        for j in range(n):
            k = _nearest_level_index(float(bw[i, j]), levels)
            rel[i, j] = n_levels - k + 1
    return rel
