"""Table 3: the feature schema of the runtime BW prediction model.

One training/inference row describes one ordered DC pair at one instant:

=========  ==========================================================
feature    description (from Table 3)
=========  ==========================================================
``N``      number of DCs in the VM-based cluster
``S_BWij`` real-time snapshot BW between VMs at DCs i and j (Mbps)
``Md``     memory utilization at the receiving end
``Ci``     CPU load at the VM in DC i (the sender)
``Nr``     number of retransmissions
``Dij``    physical distance (miles) between VMs at DCs i and j
=========  ==========================================================

The paper notes all six were significant during model training (§5.1);
the feature-importance test in ``tests/core/test_predictor.py`` checks
ours are all used too.
"""

from __future__ import annotations

import numpy as np

from repro.net.measurement import MeasurementReport
from repro.net.topology import Topology

#: Canonical feature order for every model in this repo.
FEATURE_NAMES: tuple[str, ...] = ("N", "S_BWij", "Md", "Ci", "Nr", "Dij")


def pair_feature_vector(
    report: MeasurementReport,
    topology: Topology,
    src: str,
    dst: str,
) -> np.ndarray:
    """Build one feature row from a snapshot report for pair (src, dst).

    >>> # doctest-level sanity is covered in tests; see FEATURE_NAMES.
    """
    snapshot_bw = report.matrix.get(src, dst)
    return np.array(
        [
            float(topology.n),
            snapshot_bw,
            report.memory_util.get(dst, 0.0),
            report.cpu_load.get(src, 0.0),
            report.retransmissions.get((src, dst), 0.0),
            topology.distance_miles(src, dst),
        ]
    )


def report_feature_rows(
    report: MeasurementReport, topology: Topology
) -> tuple[list[tuple[str, str]], np.ndarray]:
    """Feature rows for every ordered pair in a snapshot report.

    Returns the pair labels and the (n_pairs × 6) feature array in the
    same order.
    """
    pairs = list(report.matrix.pairs())
    rows = np.stack(
        [pair_feature_vector(report, topology, s, d) for s, d in pairs]
    )
    return pairs, rows
