"""Bench E-S583: regenerate §5.8.3 (heterogeneous compute benefits)."""

from repro.experiments import sec583


def test_sec583_heterogeneous_compute(regenerate):
    results = regenerate(sec583)
    # Predicted BWs alone help (paper: 5% latency, 1% cost).
    assert results["r_latency_pct"] > 0.0
    # Full WANify helps substantially more (paper: 15% / 7.4% / 2×).
    assert results["full_latency_pct"] > results["r_latency_pct"]
    assert results["full_latency_pct"] > 8.0
    assert results["full_min_bw_ratio"] > 1.3
