"""Benchmark-suite configuration.

Each benchmark regenerates one paper table/figure through
``repro.experiments.<module>.run`` and prints the same rows/series the
paper reports.  Experiments are deterministic and heavy (tens of
seconds), so every benchmark uses a single pedantic round.

The trained-WANify fixture is shared process-wide via the experiments'
own memoization, so the first benchmark pays the training cost once.
"""

import pytest


@pytest.fixture
def regenerate(benchmark, capsys):
    """Run an experiment once under the benchmark timer and print its
    rendered table."""

    def _regenerate(module):
        results = benchmark.pedantic(
            module.run, kwargs={"fast": True}, rounds=1, iterations=1
        )
        with capsys.disabled():
            print()
            print(module.render(results))
        return results

    return _regenerate
