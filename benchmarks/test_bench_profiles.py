"""Bench E-PROF: network-profile ablation (§2.1 diverse networks).

Runs the identical predict→optimize pipeline on VPC-peering,
public-Internet, and edge-cloud profiles and checks the expected shape:
absolute BWs fall from VPC to edge while WANify's uplift holds.
"""

from repro.experiments import profiles_ablation


def test_profiles_ablation(regenerate):
    results = regenerate(profiles_ablation)
    by_key = {row["profile"]: row for row in results["rows"]}
    vpc = by_key["vpc-peering"]
    pub = by_key["public-internet"]
    edge = by_key["edge-cloud"]

    # Single-connection floors order VPC > public > edge.
    assert vpc["single_min_bw"] > pub["single_min_bw"] > edge["single_min_bw"]

    # WANify meaningfully lifts the minimum BW on every profile
    # (the paper's headline is a ~2x minimum-BW boost on VPC).
    for row in results["rows"]:
        assert row["uplift"] >= 1.9, row

    # The prediction model stays usable on every profile.
    for row in results["rows"]:
        assert row["train_accuracy_pct"] > 75.0, row
