"""Bench: substrate-ablation evidence for DESIGN.md's modeling choices."""

from repro.experiments import ablation_model


def test_substrate_ablation(regenerate):
    results = regenerate(ablation_model)
    # The full model keeps uniform parallelism from lifting the weak
    # link much (the Fig. 2(b) behaviour)...
    assert results["uniform_to_single_ratio"] < 3.5
    # ...while pure 1/RTT weights would (wrongly) let uniform-8
    # multiply the weak link several-fold — the cap-proportional
    # weighting is the load-bearing choice.
    assert (
        results["rtt_only_ratio"]
        > results["uniform_to_single_ratio"] * 1.5
    )
