"""Bench: §3.1 model-choice validation (RF vs neural regressor)."""

from repro.experiments import model_choice


def test_model_choice(regenerate):
    results = regenerate(model_choice)
    # The paper's direction: RF trains more accurately on paper-scale
    # data and misses no more often on held-out times.  (Our NN gap is
    # smaller than the paper's CNN gap — a dense net on 6 tabular
    # features is a stronger baseline than their image-style CNN.)
    assert (
        results["rf_train_accuracy"] >= results["nn_train_accuracy"]
    )
    assert (
        results["rf_test_significant_misses"]
        <= results["nn_test_significant_misses"]
    )
    assert results["rf_train_accuracy"] > 95.0
