"""Bench E-F6: regenerate Fig. 6 (intermediate-size sweep)."""

from repro.experiments import fig6


def test_fig6_intermediate_size_sweep(regenerate):
    results = regenerate(fig6)
    rows = results["rows"]
    # Tiny shuffles: WANify ≈ vanilla (paper: alike at 2.06/3.63 MB).
    assert results["small_sizes_equal"]
    # Beyond the crossover the gain is positive and growing-ish.
    assert results["crossover_mb"] is not None
    last = rows[-1]
    assert last["latency_gain_pct"] > 2.0
    assert last["wanify_min_bw"] >= last["vanilla_min_bw"] * 0.9
