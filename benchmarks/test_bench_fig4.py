"""Bench E-F4: regenerate Fig. 4 (ML quantization variants)."""

from repro.experiments import fig4


def test_fig4_ml_quantization(regenerate):
    results = regenerate(fig4)
    v = results["variants"]
    # Ordering: quantization helps, BW-accurate quantization helps more,
    # WANify transfers at least match PredQ.
    assert v["SAGQ"]["minutes"] < v["NoQ"]["minutes"]
    assert v["PredQ"]["minutes"] <= v["SAGQ"]["minutes"]
    assert v["WQ"]["minutes"] <= v["PredQ"]["minutes"] + 0.2
    # SAGQ's headline gain over NoQ (paper ~22%).
    assert 10.0 < results["sagq_vs_noq_time_pct"] < 35.0
    # WQ boosts the minimum BW (paper 2×).
    assert results["wq_min_bw_ratio"] > 1.5
