"""Bench E-F10: regenerate Fig. 10 (skewed input handling)."""

from repro.experiments import fig10


def test_fig10_skewed_inputs(regenerate):
    results = regenerate(fig10)
    for system in ("tetrium", "kimchi"):
        row = results[system]
        # WANify-with-skew beats the single-connection and uniform
        # baselines clearly (paper: 26.5% and 20.3%).
        assert row["w_vs_single_pct"] > 5.0
        assert row["w_vs_p_pct"] > 5.0
        # Against skew-unaware WANify the paper reports +7.1%; in the
        # fluid substrate this margin is small — require it not to be
        # a regression beyond noise.
        assert row["w_vs_wns_pct"] > -5.0
        # The cluster minimum BW rises with skew-aware allocation
        # (paper: 1.2-2.1x vs the single-connection baseline).
        assert row["min_bw_ratio_vs_single"] > 1.1
