"""Scale-tier benchmarks for PR 9: the million-transfer event kernel
and the 2000-job process-parallel shard drain.

Both tests carry ``@pytest.mark.slow`` — tier-1 deselects them via
pytest.ini's addopts and the CI slow-test job runs them with
``-m slow``.  The drain tier writes ``BENCH_parallel.json`` at the
repo root; ``scripts/check_bench.py`` compares it against the
committed ``benchmarks/BENCH_parallel_baseline.json``.

Why the drain tier looks the way it does: the speedup a partitioned
drain shows even on one core comes from WAN-state locality, not just
from multiprocessing.  Every event in a shared simulation re-prices
the *whole* fleet's active pairs (``_reallocate`` → ``pair_capacity``
→ ``FluctuationModel.factor`` per distinct active pair), while a
partitioned shard re-prices only its own slice of the WAN.  The tier
models geographically *homed* tenants: each tenant's inputs live in
its home region pair, and because shard routing hashes the tenant,
every shard's WAN footprint stays local to its tenants' homes — the
shared simulation walks ~30 active pairs per event where a partitioned
shard walks ~12.  On a multi-core runner the pool stacks process
parallelism on top of that locality win.
"""

import json
import time
from pathlib import Path

import pytest

from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.dag import JobSpec, StageSpec
from repro.net.dynamics import FluctuationModel
from repro.runtime.scheduling.parallel import (
    ShardExecutor,
    build_tasks,
    merge_stats,
)
from repro.runtime.scheduling.shards import ShardedScheduler, shard_for_tenant
from repro.runtime.scheduling.slo import SLO

from test_bench_runtime import _event_kernel_rate

#: The committed PR-8 `sim_events_per_s` (the vectorized network drain
#: rate, 5558 events/s).  PR 9 re-defines the row as the bare event
#: kernel's dispatch rate; the acceptance bar is ≥ 2× this number on
#: the million-transfer workload.
PR8_SIM_EVENTS_PER_S = 5558.3

#: Transfers in the slow kernel tier (arrival + chained completion
#: each, so two million dispatched events).
MILLION = 1_000_000

#: The drain tier: 2000 jobs over 4 shards.
TIER_JOBS = 2000
TIER_SHARDS = 4
TIER_WORKERS = 4
TIER_CONCURRENT = 32

TIER_REGIONS = (
    "us-east-1",
    "us-west-1",
    "eu-west-1",
    "ap-south-1",
    "ap-northeast-1",
    "sa-east-1",
    "ap-southeast-1",
    "ap-southeast-2",
)


def _tier_job(name: str, tenant: str) -> JobSpec:
    """A light two-stage job whose inputs live in its tenant's home
    region pair.

    The home pair is derived from the same tenant hash the shard
    router uses, so all of a shard's jobs flow over that shard's two
    home regions — the geographic locality that makes a partitioned
    shard's repricing loop walk a fraction of the fleet's active
    pairs.
    """
    home = shard_for_tenant(tenant, TIER_SHARDS)
    a = TIER_REGIONS[2 * home]
    b = TIER_REGIONS[2 * home + 1]
    return JobSpec(
        name=name,
        stages=[
            StageSpec("map", cpu_s_per_mb=0.005, output_ratio=1.0, shuffle=False),
            StageSpec("reduce", cpu_s_per_mb=0.005, output_ratio=0.1, shuffle=True),
        ],
        input_mb_by_dc={a: 8.0, b: 8.0},
    )


def _tier_entries(count: int = TIER_JOBS):
    """(delay, job, policy, slo) tuples for the drain tier — balanced
    tenants (16 tenants, 4 per shard) and a spread of deadlines."""
    entries = []
    for i in range(count):
        tenant = f"tenant{i % 16}"
        entries.append(
            (
                0.0,
                _tier_job(f"par-{i}", tenant),
                None,
                SLO(
                    deadline_s=3600.0 + ((i * 7919) % count) * 30.0,
                    tenant=tenant,
                ),
            )
        )
    return entries


def _in_process_drain(entries) -> tuple[dict, float]:
    """Wall seconds for the shared-simulation ShardedScheduler drain."""
    cluster = GeoCluster.build(
        TIER_REGIONS,
        "t2.medium",
        fluctuation=FluctuationModel(seed=3),
        kernel="vectorized",
    )
    scheduler = ShardedScheduler(
        cluster,
        shards=TIER_SHARDS,
        max_concurrent=TIER_CONCURRENT,
        admission="deadline-edf",
    )
    start = time.perf_counter()
    scheduler.submit_many(
        [(delay, job, policy, slo) for delay, job, policy, slo in entries]
    )
    cluster.network.sim.run()
    wall_s = time.perf_counter() - start
    return scheduler.stats(), wall_s


def _tier_tasks(entries):
    return build_tasks(
        entries,
        TIER_SHARDS,
        regions=TIER_REGIONS,
        vm="t2.medium",
        profile="vpc-peering",
        scenario=None,
        seed=3,
        kernel="vectorized",
        admission="deadline-edf",
        default_policy="tetrium",
        max_concurrent=TIER_CONCURRENT,
        admit_batch=16,
    )


@pytest.mark.slow
def test_kernel_million_transfer_rate():
    """The bare event kernel sustains ≥ 2× the PR-8 committed event
    rate on a million-transfer workload (in practice ≥ 30×)."""
    rate, wall_s, events = _event_kernel_rate(MILLION)
    print(
        f"\nevent kernel: {rate:.0f} events/s over {events} events "
        f"({wall_s:.1f} s wall)"
    )
    assert events == 2 * MILLION
    assert rate >= 2.0 * PR8_SIM_EVENTS_PER_S


@pytest.mark.slow
def test_parallel_drain_2000_jobs():
    """The 2000-job/4-shard tier: partitioned execution with
    ``shard_workers=4`` beats the shared-simulation drain, and the
    pool reproduces the serial partitioned records exactly.

    Writes BENCH_parallel.json; ``parallel_speedup`` must clear 1.5×
    (the measured value is ~2.2× on a single core, and multi-core
    runners stack process parallelism on top).  `check_bench.py`
    additionally diffs the committed row against the baseline.
    """
    entries = _tier_entries()
    stats, base_wall = _in_process_drain(entries)
    assert stats["completed"] == float(TIER_JOBS)

    tasks = _tier_tasks(entries)
    serial = ShardExecutor(0)
    serial_results = serial.run(tasks)
    serial_wall = serial.wall_s

    pooled = ShardExecutor(TIER_WORKERS)
    pooled_results = pooled.run(tasks)
    pooled_wall = pooled.wall_s

    merged = merge_stats(pooled_results)
    assert merged["completed"] == float(TIER_JOBS)
    # The pool is a pure fan-out of the serial partitioned run.
    serial_times = {
        r.name: r.finished_s for res in serial_results for r in res.records
    }
    pooled_times = {
        r.name: r.finished_s for res in pooled_results for r in res.records
    }
    assert serial_times == pooled_times

    speedup = base_wall / pooled_wall
    report = {
        "parallel_jobs": float(TIER_JOBS),
        "parallel_shards": float(TIER_SHARDS),
        "shard_worker_count": 0.0 if pooled.fell_back else float(TIER_WORKERS),
        "in_process_wall_s": base_wall,
        "parallel_serial_wall_s": serial_wall,
        "parallel_wall_s": pooled_wall,
        "parallel_speedup": speedup,
        "parallel_jobs_per_wall_s": TIER_JOBS / pooled_wall,
    }
    path = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"\nparallel drain: in-process {base_wall:.1f} s vs partitioned "
        f"{pooled_wall:.1f} s with {TIER_WORKERS} workers "
        f"({speedup:.2f}×, serial partitioned {serial_wall:.1f} s) "
        f"→ {path.name}"
    )
    assert speedup > 1.5
