"""Bench E-F5: regenerate Fig. 5 (TeraSort transfer approaches)."""

from repro.experiments import fig5


def test_fig5_parallel_transfer_approaches(regenerate):
    results = regenerate(fig5)
    v = results["variants"]
    # Uniform parallelism does not beat vanilla meaningfully and fails
    # to raise the minimum BW (paper: it *increases* latency; our fluid
    # network has no loss-driven collapse, so "marginal" is the robust
    # form of the claim).
    assert results["p_is_marginal"]
    assert v["wanify-p"]["min_bw_mbps"] <= v["single"]["min_bw_mbps"] * 1.1
    # Heterogeneous variants win on latency and minimum BW.
    assert v["wanify-dynamic"]["jct_min"] < v["single"]["jct_min"]
    assert v["wanify-tc"]["jct_min"] < v["single"]["jct_min"]
    assert results["tc_latency_gain_pct"] > 8.0
    assert results["tc_min_bw_ratio"] > 1.5
