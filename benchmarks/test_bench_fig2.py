"""Bench E-F2: regenerate Fig. 2 (3-DC connection schemes)."""

from repro.experiments import fig2


def test_fig2_connection_schemes(regenerate):
    results = regenerate(fig2)
    # Single-connection min BW calibrated to the paper's 121 Mbps.
    assert abs(results["min_single"] - 121.0) < 25.0
    # Heterogeneous raises the minimum well above uniform (paper 2.1×)
    # while trading away some maximum BW.
    assert results["min_ratio"] > 1.5
    assert results["max_hetero"] <= results["max_uniform"] * 1.05
    # The Fig. 2(d) bottleneck shrinks monotonically across schemes.
    t = results["bottleneck_s"]
    assert t["heterogeneous"] < t["uniform"] < t["single"]
