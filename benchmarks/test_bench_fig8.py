"""Bench E-F8a/E-F8b: regenerate Fig. 8 (ablation + prediction error)."""

from repro.experiments import fig8


def test_fig8_ablation_and_error(regenerate):
    results = regenerate(fig8)
    tetrium = results["ablation"]["tetrium"]
    # Each component contributes on Tetrium (paper: 16/11/23%).
    assert tetrium["global_only_gain_pct"] > 5.0
    assert tetrium["local_only_gain_pct"] > 5.0
    assert tetrium["full_gain_pct"] > 10.0
    # Min BW improves under every variant (paper 1.1–1.2×+).
    assert tetrium["full_min_bw_ratio"] > 1.0
    # Error injection degrades latency and the minimum BW (paper:
    # +18% latency, −38% min BW).
    err = results["error_impact"]
    assert err["latency_increase_pct"] > 0.0
    assert err["min_bw_drop_pct"] > 0.0
