"""Bench E-T1: regenerate Table 1 (static vs runtime BW gaps)."""

from repro.experiments import table1


def test_table1_static_vs_runtime_gaps(regenerate):
    results = regenerate(table1)
    # Shape targets: a double-digit number of significant gaps out of 56
    # directed links (paper: 18), and a slowest-peer ordering change.
    assert results["total_significant"] >= 10
    assert results["ordering_changes"]
