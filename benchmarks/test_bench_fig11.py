"""Bench E-F11a/E-F11b: regenerate Fig. 11 (prediction accuracy under
heterogeneity)."""

from repro.experiments import fig11


def test_fig11_heterogeneity_accuracy(regenerate):
    results = regenerate(fig11)
    # Predicted BWs beat static-independent everywhere (the paper's
    # core accuracy claim for both panels).
    assert results["predicted_beats_static_sizes"]
    assert results["predicted_beats_static_vms"]
    # And not marginally: summed over cluster sizes, predicted has
    # far fewer significant differences.
    static_total = sum(
        v["static_significant"]
        for v in results["by_cluster_size"].values()
    )
    predicted_total = sum(
        v["predicted_significant"]
        for v in results["by_cluster_size"].values()
    )
    assert predicted_total <= static_total / 2
