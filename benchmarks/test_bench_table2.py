"""Bench E-T2: regenerate Table 2 (monitoring vs prediction costs)."""

from repro.experiments import table2


def test_table2_monitoring_costs(regenerate):
    results = regenerate(table2)
    # Monitoring dollars within 10% of the paper per cluster size, and
    # the headline savings ratio in the ~90%+ band.
    for n, paper_usd in results["paper_monitoring_usd"].items():
        measured = results["monitoring_usd"][n]
        assert abs(measured - paper_usd) / paper_usd < 0.10
    assert results["savings_pct"] > 88.0
