"""Bench E-ORP + raw scheduler throughput.

Two baselines future PRs can regress against:

* the online-vs-static re-planning experiment (wall-clock of the full
  sweep plus the speedup/replan assertions), and
* raw multi-job scheduler throughput — how many jobs per simulated hour
  the admission queue pushes through a contended 4-DC substrate, and
  how much wall-clock the event-driven executor spends doing it.
"""

from repro.experiments import online_replanning
from repro.gda.engine.cluster import GeoCluster
from repro.gda.systems.tetrium import TetriumPolicy
from repro.gda.workloads.terasort import terasort_job
from repro.net.dynamics import FluctuationModel
from repro.runtime.scheduler import JobScheduler

REGIONS = ("us-east-1", "us-west-1", "eu-west-1", "ap-southeast-1")
N_JOBS = 12


def test_online_replanning_vs_static(regenerate):
    results = regenerate(online_replanning)
    rows = results["rows"]
    # Online re-planning must never lose to the frozen plan, must win
    # clearly on at least one persistent-drift scenario, and must
    # actually fire mid-job re-plans.
    assert all(row["speedup"] >= 0.97 for row in rows.values())
    assert max(row["speedup"] for row in rows.values()) > 1.05
    assert sum(row["replans"] for row in rows.values()) >= 3
    assert all(row["completed"] == 6 for row in rows.values())


def _drain_scheduler() -> JobScheduler:
    cluster = GeoCluster.build(
        REGIONS, "t2.medium", fluctuation=FluctuationModel(seed=3)
    )
    scheduler = JobScheduler(cluster, max_concurrent=3)
    for i in range(N_JOBS):
        scheduler.submit(
            terasort_job({k: 400.0 for k in REGIONS}, name=f"ts-{i}"),
            TetriumPolicy(),
        )
    cluster.network.sim.run()
    return scheduler


def test_scheduler_throughput(benchmark, capsys):
    scheduler = benchmark.pedantic(
        _drain_scheduler, rounds=1, iterations=1
    )
    stats = scheduler.stats()
    with capsys.disabled():
        print()
        print(
            f"scheduler throughput: {stats['jobs_per_hour']:.1f} "
            f"jobs/sim-hour over {N_JOBS} jobs "
            f"(peak concurrency {scheduler.peak_concurrency}, "
            f"fairness {stats['fairness']:.2f})"
        )
    assert stats["completed"] == N_JOBS
    assert scheduler.peak_concurrency == 3
    assert stats["jobs_per_hour"] > 10.0
