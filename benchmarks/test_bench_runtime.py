"""Bench E-ORP + raw scheduler throughput + the BENCH_runtime report.

Baselines future PRs can regress against:

* the online-vs-static re-planning experiment (wall-clock of the full
  sweep plus the speedup/replan assertions),
* raw multi-job scheduler throughput — how many jobs per simulated hour
  the admission queue pushes through a contended 4-DC substrate, and
  how much wall-clock the event-driven executor spends doing it, and
* ``test_runtime_bench_report``, which writes ``BENCH_runtime.json`` at
  the repo root (jobs/sec, re-plan latency, metrics-log ingest
  overhead %) for ``scripts/check_bench.py`` to diff against the
  committed ``benchmarks/BENCH_runtime_baseline.json``.
"""

import json
import time
from pathlib import Path

from repro.experiments import online_replanning, recalibration
from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.dag import JobSpec, StageSpec
from repro.tuner import load_tune, run_tune, rung_plan
from repro.gda.systems.tetrium import TetriumPolicy
from repro.gda.workloads.terasort import terasort_job
from repro.net.dynamics import FluctuationModel, StaticModel
from repro.net.simulator import NetworkSimulator
from repro.net.topology import Topology
from repro.runtime.drift import ReplanEvent
from repro.runtime.observability import MetricsLog
from repro.runtime.scheduler import JobScheduler
from repro.runtime.scheduling import SLO
from repro.runtime.scheduling.shards import ShardedScheduler
from repro.runtime.service import PipelineService, ServiceConfig, default_job_mix
from repro.sim.kernel import Simulator

REGIONS = ("us-east-1", "us-west-1", "eu-west-1", "ap-southeast-1")
N_JOBS = 12


def test_online_replanning_vs_static(regenerate):
    results = regenerate(online_replanning)
    rows = results["rows"]
    # Online re-planning must never lose to the frozen plan, must win
    # clearly on at least one persistent-drift scenario, and must
    # actually fire mid-job re-plans.
    assert all(row["speedup"] >= 0.97 for row in rows.values())
    assert max(row["speedup"] for row in rows.values()) > 1.05
    assert sum(row["replans"] for row in rows.values()) >= 3
    assert all(row["completed"] == 6 for row in rows.values())


def test_recalibration_vs_static(regenerate):
    results = regenerate(recalibration)
    static = results["static"]
    recal = results["recalibrated"]
    # Continuous recalibration must strictly improve SLO attainment on
    # the committed circuit-chaos cell, with the gauging loop actually
    # ticking — and the static run must not have recalibrated at all.
    assert recal.slo_attainment > static.slo_attainment
    assert recal.recalibrations > 0
    assert recal.recal_adjustments > 0
    assert static.recalibrations == 0
    assert static.recal_adjustments == 0
    assert recal.completed == static.completed == 10


def _drain_scheduler() -> JobScheduler:
    cluster = GeoCluster.build(
        REGIONS, "t2.medium", fluctuation=FluctuationModel(seed=3)
    )
    scheduler = JobScheduler(cluster, max_concurrent=3)
    for i in range(N_JOBS):
        scheduler.submit(
            terasort_job({k: 400.0 for k in REGIONS}, name=f"ts-{i}"),
            TetriumPolicy(),
        )
    cluster.network.sim.run()
    return scheduler


def test_scheduler_throughput(benchmark, capsys):
    scheduler = benchmark.pedantic(
        _drain_scheduler, rounds=1, iterations=1
    )
    stats = scheduler.stats()
    with capsys.disabled():
        print()
        print(
            f"scheduler throughput: {stats['jobs_per_hour']:.1f} "
            f"jobs/sim-hour over {N_JOBS} jobs "
            f"(peak concurrency {scheduler.peak_concurrency}, "
            f"fairness {stats['fairness']:.2f})"
        )
    assert stats["completed"] == N_JOBS
    assert scheduler.peak_concurrency == 3
    assert stats["jobs_per_hour"] > 10.0


# ----------------------------------------------------------------------
# The BENCH_runtime.json report
# ----------------------------------------------------------------------

#: Monitor ticks per metrics-log micro-benchmark round.
_LOG_ROUNDS = 20_000

#: The hard ceiling the tentpole promises: warehousing every sample
#: must stay below this share of a run's wall-clock.
MAX_LOG_OVERHEAD_PCT = 5.0


def _metrics_log_ns_per_sample() -> float:
    """Wall nanoseconds one ``MetricsLog.record`` destination costs.

    The ingest path is a bare list append; measuring it in isolation
    (rather than diffing two whole runs) keeps the number stable enough
    to regress against.
    """
    log = MetricsLog()
    rates = {f"dc-{i}": float(i) for i in range(7)}
    start = time.perf_counter()
    for tick in range(_LOG_ROUNDS):
        log.record("src", float(tick), rates)
    elapsed = time.perf_counter() - start
    return elapsed * 1e9 / (_LOG_ROUNDS * len(rates))


def _timed_service_run() -> tuple[dict, float]:
    """One observed service run: (summary row, wall seconds)."""
    config = ServiceConfig(
        regions=REGIONS,
        n_training_datasets=6,
        n_estimators=6,
        scenario="link-failure",
    )
    start = time.perf_counter()
    service = PipelineService.build(config)
    mix = default_job_mix(REGIONS, count=6, seed=42, scale_mb=3000.0)
    service.submit_mix(mix)
    service.run(until=None)
    service.stop()
    wall_s = time.perf_counter() - start
    row = service.summary().to_row()
    row["log_entries"] = service.hub.log.size
    return row, wall_s


def _replan_latency_ms(rounds: int = 5) -> float:
    """Mean wall milliseconds of one forced mid-job re-plan."""
    config = ServiceConfig(
        regions=REGIONS, n_training_datasets=6, n_estimators=6
    )
    service = PipelineService.build(config)
    event = ReplanEvent(
        time=0.0,
        src=REGIONS[0],
        dst=REGIONS[1],
        observed_mbps=50.0,
        predicted_mbps=200.0,
        rel_error=0.75,
    )
    start = time.perf_counter()
    for _ in range(rounds):
        service.replan(event)
    elapsed = time.perf_counter() - start
    service.stop()
    return elapsed * 1e3 / rounds


def _timed_tune_search() -> tuple[int, int, float]:
    """One committed offline-tuner search: (cells executed, the
    unpruned cells × rungs product, wall seconds).

    Runs the example tune file's successive-halving search end to end;
    ``cells_executed`` is fully deterministic (same matrix, same
    pruning decisions), the wall-clock side regresses the search
    throughput.
    """
    spec = load_tune("examples/tune.toml")
    unpruned = len(spec.sweep.cells) * len(rung_plan(spec))
    start = time.perf_counter()
    result = run_tune(spec)
    wall_s = time.perf_counter() - start
    assert result.winner is not None
    return result.cells_executed, unpruned, wall_s


#: Concurrent single-pair transfers in the kernel micro-benchmark —
#: deep in the vectorized kernel's territory (the scalar path walks
#: every transfer per event; the batched path advances them as one
#: numpy expression).
_KERNEL_TRANSFERS = 3000

#: The speedup the vectorized kernel must deliver on that workload.
MIN_KERNEL_SPEEDUP = 5.0


#: Transfer count for the pure event-kernel rate row.  The slow tier
#: (``test_bench_parallel.py``) runs the same workload at one million
#: transfers; this size keeps the default bench under a second.
_EVENT_KERNEL_TRANSFERS = 100_000


def _event_kernel_rate(n_transfers: int) -> tuple[float, float, int]:
    """(events/wall-s, wall seconds, events) for the bare event kernel.

    Replays the :class:`NetworkSimulator` event shape with the network
    math stripped out: arrivals land in bulk waves via
    ``schedule_many`` and every arrival cancels and re-arms one shared
    completion event (the ``_schedule_completion`` pattern), whose
    firings then chain until the wave drains.  Arrivals share instants
    ten at a time, so ``run()``'s same-instant batch dispatch is on the
    measured path too.  What this prices is heap discipline alone —
    tuple entries, the skim loop, batch dispatch, and bulk insert.
    """
    sim = Simulator()
    state: dict = {"live": 0, "next": None}

    def complete() -> None:
        state["next"] = None
        state["live"] -= 1
        rearm()

    def rearm() -> None:
        if state["next"] is not None:
            state["next"].cancel()
            state["next"] = None
        if state["live"] > 0:
            state["next"] = sim.schedule(1.0, complete, priority=1)

    def arrive() -> None:
        state["live"] += 1
        rearm()

    wave = 1000
    start = time.perf_counter()
    for _ in range(max(1, n_transfers // wave)):
        sim.schedule_many((0.001 * (k // 10), arrive) for k in range(wave))
        sim.run()
    wall_s = time.perf_counter() - start
    assert state["live"] == 0
    return sim.events_processed / wall_s, wall_s, sim.events_processed


def _sim_event_rate(kernel: str) -> tuple[float, float, int]:
    """(events/wall-s, wall seconds, events) draining one crowded pair."""
    topology = Topology.build(("us-east-1", "us-west-1"), "t2.medium")
    net = NetworkSimulator(topology, fluctuation=StaticModel(), kernel=kernel)
    for i in range(_KERNEL_TRANSFERS):
        # Strictly increasing sizes: every transfer completes at its
        # own instant, so each completion re-shares the surviving
        # crowd — the scalar kernel's quadratic worst case.
        net.start_transfer("us-east-1", "us-west-1", 100.0 + 0.25 * i)
    start = time.perf_counter()
    net.sim.run()
    wall_s = time.perf_counter() - start
    events = net.sim.events_processed
    return events / wall_s, wall_s, events


def _bench_job(name: str) -> JobSpec:
    pair = ("us-east-1", "us-west-1")
    return JobSpec(
        name=name,
        stages=[
            StageSpec(
                "map", cpu_s_per_mb=0.01, output_ratio=1.0, shuffle=False
            ),
            StageSpec(
                "reduce", cpu_s_per_mb=0.01, output_ratio=0.1, shuffle=True
            ),
        ],
        input_mb_by_dc={k: 40.0 for k in pair},
    )


def _sharded_drain(n_jobs: int = 400) -> tuple[dict, float]:
    """Drain a skewed multi-tenant burst through 4 shards.

    Half the jobs belong to one hot tenant, so the drain exercises
    work-stealing hard; the weather and routing are seeded, making
    ``steals`` a deterministic count.
    """
    cluster = GeoCluster.build(
        ("us-east-1", "us-west-1"),
        "t2.medium",
        fluctuation=FluctuationModel(seed=3),
        kernel="vectorized",
    )
    scheduler = ShardedScheduler(
        cluster, shards=4, max_concurrent=8, admission="deadline-edf"
    )
    start = time.perf_counter()
    for i in range(n_jobs):
        tenant = "hot" if i % 2 == 0 else f"tenant{i % 5}"
        scheduler.submit(
            _bench_job(f"shard-{i}"),
            slo=SLO(
                deadline_s=3600.0 + ((i * 7919) % n_jobs) * 30.0,
                tenant=tenant,
            ),
        )
    cluster.network.sim.run()
    wall_s = time.perf_counter() - start
    return scheduler.stats(), wall_s


def test_runtime_bench_report(capsys):
    """Write BENCH_runtime.json and pin the metrics-log overhead < 5%."""
    row, wall_s = _timed_service_run()
    ns_per_sample = _metrics_log_ns_per_sample()
    # The run-level ingest overhead: per-sample warehouse cost times the
    # samples this run actually warehoused, against its wall-clock.
    overhead_pct = (
        100.0 * row["log_entries"] * ns_per_sample * 1e-9 / wall_s
    )
    replan_ms = _replan_latency_ms()
    tuner_cells, tuner_unpruned, tune_wall_s = _timed_tune_search()
    scalar_rate, scalar_wall, scalar_events = _sim_event_rate("scalar")
    vec_rate, vec_wall, vec_events = _sim_event_rate("vectorized")
    kernel_speedup = scalar_wall / vec_wall
    event_rate, _, event_count = _event_kernel_rate(_EVENT_KERNEL_TRANSFERS)
    sharded_stats, sharded_wall = _sharded_drain()
    recal_results = recalibration.run(fast=True)
    recal = recal_results["recalibrated"]
    recal_gain_pts = (
        recal.slo_attainment - recal_results["static"].slo_attainment
    ) * 100.0
    report = {
        "completed_jobs": row["completed"],
        "jobs_per_wall_s": row["completed"] / wall_s,
        "service_wall_s": wall_s,
        "replan_latency_ms": replan_ms,
        "metrics_log_ns_per_sample": ns_per_sample,
        "metrics_log_entries": row["log_entries"],
        "rollup_rows": row["rollup_rows"],
        "events_traced": row["events_traced"],
        "metrics_log_overhead_pct": overhead_pct,
        "tuner_cells_executed": tuner_cells,
        "tuner_unpruned_cell_runs": tuner_unpruned,
        "tuner_cells_per_s": tuner_cells / tune_wall_s,
        "sim_events_per_s": event_rate,
        "net_events_per_s": vec_rate,
        "sim_kernel_speedup": kernel_speedup,
        "sharded_jobs_per_wall_s": sharded_stats["completed"] / sharded_wall,
        "steal_count": sharded_stats["steals"],
        "recal_ticks": recal.recalibrations,
        "recal_adjustments": recal.recal_adjustments,
        "recal_attainment_gain_pts": recal_gain_pts,
    }
    path = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    with capsys.disabled():
        print()
        print(
            f"runtime bench: {report['jobs_per_wall_s']:.1f} jobs/wall-s, "
            f"re-plan {replan_ms:.1f} ms, metrics-log "
            f"{ns_per_sample:.0f} ns/sample "
            f"({overhead_pct:.3f}% of the run), tuner search "
            f"{tuner_cells}/{tuner_unpruned} cell-runs at "
            f"{report['tuner_cells_per_s']:.1f} cells/wall-s → {path.name}"
        )
        print(
            f"transfer kernel: {vec_rate:.0f} events/s vectorized vs "
            f"{scalar_rate:.0f} scalar ({kernel_speedup:.1f}× over "
            f"{vec_events} events); event kernel {event_rate:.0f} "
            f"events/s over {event_count} events; sharded drain "
            f"{report['sharded_jobs_per_wall_s']:.0f} jobs/wall-s, "
            f"{sharded_stats['steals']:.0f} steals"
        )
        print(
            f"recalibration: {recal.recalibrations} ticks, "
            f"{recal.recal_adjustments} capacity adjustments, "
            f"{recal_gain_pts:+.0f} pts SLO attainment vs static"
        )
    assert row["completed"] == 6
    assert row["rollup_rows"] > 0 and row["events_traced"] > 0
    assert overhead_pct < MAX_LOG_OVERHEAD_PCT
    # Successive halving must beat the unpruned cells × rungs product.
    assert tuner_cells < tuner_unpruned
    # Both kernels drain the same workload through the same events —
    # the vectorized one just walks them ≥5× faster.
    assert scalar_events == vec_events
    assert kernel_speedup >= MIN_KERNEL_SPEEDUP
    # The pure-kernel workload dispatches exactly one arrival and one
    # chained completion per transfer, wall-clock aside.
    assert event_count == 2 * _EVENT_KERNEL_TRANSFERS
    assert sharded_stats["completed"] == 400.0
    assert sharded_stats["steals"] > 0
    # Recalibration must have ticked, moved capacities, and won on
    # attainment — a zero gain means the committed cell stopped
    # differentiating and needs re-tuning, not a looser assert.
    assert recal.recalibrations > 0
    assert recal.recal_adjustments > 0
    assert recal_gain_pts > 0.0
