"""Bench E-F9a/E-F9b: regenerate Fig. 9 (AIMD dynamics tracking)."""

from repro.experiments import fig9


def test_fig9_aimd_tracking(regenerate):
    results = regenerate(fig9)
    # The local optimizer produces per-epoch data for both runs.
    assert results["clean_epochs"] >= 3
    assert results["noisy_epochs"] >= 3
    # The noisy controller mis-tracks at least as often as the clean one
    # (paper: 6 significant verticals appear only with 20% error).
    assert (
        results["noisy_significant"] >= results["clean_significant"]
    )
