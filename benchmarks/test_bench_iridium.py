"""Bench E-IRD: Iridium [33] under WANify (extension experiment).

Skewed-input TPC-DS with Iridium's data placement aimed by static vs
predicted BWs, then the full WANify deployment.  The honest shape:
accurate BWs give a modest JCT/cost edge (the greedy stops mis-aiming);
the full deployment holds JCT while multiplying the minimum BW.
"""

from repro.experiments import iridium_baseline


def test_iridium_skewed_staircase(regenerate):
    results = regenerate(iridium_baseline)
    rows = results["rows"]

    for query, row in rows.items():
        # Accurate BWs never hurt; the heavy query gains measurably.
        assert row["pred_perf"] > -2.0, (query, row)
        # The full deployment stays within noise of the predicted run.
        assert row["full_perf"] > row["pred_perf"] - 5.0, (query, row)
        # Parallel heterogeneous connections multiply the minimum BW.
        assert row["min_bw_ratio"] > 2.0, (query, row)

    assert rows[78]["pred_perf"] > 2.0
    # The data placement actually fires in both treatments (it is the
    # mechanism under test).
    assert rows[78]["base_migration_mb"] > 0
    assert rows[78]["pred_migration_mb"] > 0
