"""Bench E-F7: regenerate Fig. 7 (GDA systems with/without WANify)."""

from repro.experiments import fig7


def test_fig7_wanify_enabled_systems(regenerate):
    results = regenerate(fig7)
    # Paper: latency down by up to 24%, cost by up to 8%, min BW 3.3×.
    assert 15.0 < results["max_latency_gain_pct"] < 35.0
    assert results["max_cost_gain_pct"] > 4.0
    assert results["best_min_bw_ratio"] > 2.0
    # Heavy query benefits on both systems.
    table = results["table"]
    assert table[("tetrium", 78)]["latency_gain_pct"] > 10.0
    assert table[("kimchi", 78)]["latency_gain_pct"] > 3.0
