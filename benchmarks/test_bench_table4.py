"""Bench E-T4: regenerate Table 4 (gains from accurate BWs)."""

from repro.experiments import table4


def test_table4_accurate_bw_gains(regenerate):
    results = regenerate(table4)
    table = results["table"]
    # Average/heavy queries benefit from runtime-accurate BWs on
    # Tetrium (paper: 8–14%); the light query moves only a little.
    for query in (95, 11, 78):
        assert table[("tetrium", query)]["predicted"]["perf"] > 5.0
    assert abs(table[("tetrium", 82)]["predicted"]["perf"]) < 5.0
    # The headline: predicted ≈ static-simultaneous...
    for key, row in table.items():
        assert (
            abs(row["predicted"]["perf"] - row["simultaneous"]["perf"]) < 6.0
        )
    # ...at a fraction of the monitoring cost (paper: ~94% savings).
    assert (
        results["snapshot_prediction_usd"]
        < 0.2 * results["simultaneous_monitoring_usd"]
    )
